//! Stream framing for socket connections: preamble, length-prefixed
//! frames, and the envelope/control codecs layered on top.
//!
//! Every connection — data plane or control plane — opens with a 6-byte
//! preamble ([`paris_proto::wire::MAGIC`] + the sender's wire version,
//! little endian) exchanged in both directions, then carries
//! length-prefixed frames: a `u32` little-endian payload length followed
//! by the payload. Each side advertises the version of its *configured*
//! [`WireFormat`]; the connection then speaks the smaller of the two
//! (see [`negotiate`]), and a peer advertising a version outside
//! [`wire::MIN_PROTOCOL_VERSION`]`..=`[`wire::PROTOCOL_VERSION`] is
//! refused cleanly during the handshake. The frame length is validated
//! against [`paris_proto::wire::MAX_FRAME_LEN`] **before** any
//! allocation, so untrusted bytes can neither panic the reader nor make
//! it reserve an OOM-sized buffer.

use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

use paris_proto::ctrl::{self, Ctrl};
use paris_proto::{wire, Envelope};
use paris_types::{Error, WireFormat};

/// Size of the connection preamble: magic + protocol version.
pub const PREAMBLE_LEN: usize = wire::MAGIC.len() + 2;

/// How many consecutive read timeouts mid-frame the reader tolerates
/// before declaring the peer stalled. Combined with the socket's read
/// timeout this bounds how long a half-written frame can wedge a reader.
const MAX_MID_FRAME_STALLS: u32 = 100;

/// Outcome of one [`read_frame`] call.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The peer closed the connection at a frame boundary.
    Eof,
    /// The socket's read timeout elapsed at a frame boundary — the caller
    /// should check its stop condition and try again.
    TimedOut,
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Writes this side's preamble, advertising `version` (the configured
/// wire format's version).
pub fn write_preamble<W: Write>(w: &mut W, version: u16) -> Result<(), Error> {
    let mut preamble = [0u8; PREAMBLE_LEN];
    preamble[..4].copy_from_slice(&wire::MAGIC);
    preamble[4..].copy_from_slice(&version.to_le_bytes());
    w.write_all(&preamble)
        .and_then(|()| w.flush())
        .map_err(|_| Error::Transport("peer connection lost during handshake"))
}

/// The wire format a connection speaks once both sides have advertised:
/// the highest version common to `local` and the peer — i.e. the smaller
/// of the two, since every implementation speaks all versions up to its
/// advertised one.
///
/// The peer's version must already have passed [`read_preamble`]
/// validation, so the minimum is always a known format.
pub fn negotiate(local: WireFormat, peer_version: u16) -> WireFormat {
    WireFormat::from_version(local.version().min(peer_version))
        .expect("peer version validated by read_preamble")
}

/// Reads and validates the peer's preamble, retrying socket timeouts until
/// `deadline`; returns the version the peer advertised. The stream should
/// have a read timeout configured, or a silent peer holds the reader until
/// its own timeout fires.
///
/// # Errors
///
/// [`Error::Transport`] on bad magic, a version outside
/// [`wire::MIN_PROTOCOL_VERSION`]`..=`[`wire::PROTOCOL_VERSION`], or a
/// peer that closes or stalls mid-handshake.
pub fn read_preamble<R: Read>(r: &mut R, deadline: Instant) -> Result<u16, Error> {
    let mut buf = [0u8; PREAMBLE_LEN];
    let mut filled = 0;
    while filled < PREAMBLE_LEN {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(Error::Transport("peer closed during handshake")),
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {
                if Instant::now() >= deadline {
                    return Err(Error::Transport("handshake timed out"));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Err(Error::Transport("peer connection lost during handshake")),
        }
    }
    if buf[..4] != wire::MAGIC {
        return Err(Error::Transport("bad protocol magic"));
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if !(wire::MIN_PROTOCOL_VERSION..=wire::PROTOCOL_VERSION).contains(&version) {
        return Err(Error::Transport("protocol version mismatch"));
    }
    Ok(version)
}

/// Writes one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), Error> {
    if payload.len() > wire::MAX_FRAME_LEN {
        return Err(Error::Transport("frame exceeds maximum length"));
    }
    let header = (payload.len() as u32).to_le_bytes();
    w.write_all(&header)
        .and_then(|()| w.write_all(payload))
        .and_then(|()| w.flush())
        .map_err(|_| Error::Transport("peer connection lost"))
}

/// Reads one length-prefixed frame.
///
/// A read timeout at a frame boundary (no header byte consumed yet)
/// surfaces as [`FrameRead::TimedOut`] so the caller can poll its stop
/// flag; once a frame is partially read, timeouts are retried up to a
/// stall bound because the remainder is normally already in flight.
///
/// # Errors
///
/// Returns [`Error::Transport`] for connections lost mid-frame, stalled
/// peers, and length prefixes beyond [`wire::MAX_FRAME_LEN`] (checked
/// before allocating).
pub fn read_frame<R: Read>(r: &mut R) -> Result<FrameRead, Error> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    let mut stalls = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(FrameRead::Eof),
            Ok(0) => return Err(Error::Transport("peer closed mid-frame")),
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {
                if filled == 0 {
                    return Ok(FrameRead::TimedOut);
                }
                stalls += 1;
                if stalls > MAX_MID_FRAME_STALLS {
                    return Err(Error::Transport("peer stalled mid-frame"));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Err(Error::Transport("peer connection lost")),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > wire::MAX_FRAME_LEN {
        return Err(Error::Transport("frame exceeds maximum length"));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    let mut stalls = 0;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(Error::Transport("peer closed mid-frame")),
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls > MAX_MID_FRAME_STALLS {
                    return Err(Error::Transport("peer stalled mid-frame"));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Err(Error::Transport("peer connection lost")),
        }
    }
    Ok(FrameRead::Frame(payload))
}

/// Writes one protocol envelope as a frame in the negotiated encoding;
/// returns the wire bytes spent (header included) for bandwidth
/// accounting.
pub fn write_envelope<W: Write>(w: &mut W, env: &Envelope, fmt: WireFormat) -> Result<u64, Error> {
    let bytes = wire::encode_envelope_with(env, fmt);
    write_frame(w, &bytes)?;
    Ok(4 + bytes.len() as u64)
}

/// Decodes a data-plane frame payload into an envelope. Frames are
/// self-describing (a v2 frame opens with its marker byte), so the
/// reader accepts either encoding regardless of what was negotiated —
/// and never misparses one as the other.
pub fn decode_envelope_frame(bytes: &[u8]) -> Result<Envelope, Error> {
    wire::decode_envelope_auto(bytes).map_err(|_| Error::Transport("malformed envelope frame"))
}

/// Writes one control frame.
pub fn write_ctrl<W: Write>(w: &mut W, ctrl: &Ctrl) -> Result<(), Error> {
    write_frame(w, &ctrl::encode_ctrl(ctrl))
}

/// Decodes a control-plane frame payload.
pub fn decode_ctrl_frame(bytes: &[u8]) -> Result<Ctrl, Error> {
    ctrl::decode_ctrl(bytes).map_err(|_| Error::Transport("malformed control frame"))
}

/// Reads control frames until one arrives, the peer disappears, or
/// `deadline` passes — the blocking request/response helper the control
/// plane is built on. Timeouts at frame boundaries are retried within the
/// deadline.
pub fn read_ctrl_deadline<R: Read>(r: &mut R, deadline: Instant) -> Result<Ctrl, Error> {
    loop {
        match read_frame(r)? {
            FrameRead::Frame(bytes) => return decode_ctrl_frame(&bytes),
            FrameRead::Eof => return Err(Error::Transport("control peer closed")),
            FrameRead::TimedOut => {
                if Instant::now() >= deadline {
                    return Err(Error::Transport("control operation timed out"));
                }
            }
        }
    }
}

/// A deadline `timeout` from now (saturating).
pub fn deadline_in(timeout: Duration) -> Instant {
    Instant::now()
        .checked_add(timeout)
        .unwrap_or_else(Instant::now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_proto::Msg;
    use paris_types::{ClientId, DcId, PartitionId, ServerId, Timestamp};
    use proptest::prelude::*;
    use std::io::Cursor;

    fn sample_env() -> Envelope {
        Envelope::new(
            ClientId::new(DcId(0), 7),
            ServerId::new(DcId(1), PartitionId(3)),
            Msg::StartTxReq {
                client_ust: Timestamp::from_parts(10, 2),
            },
        )
    }

    #[test]
    fn preamble_roundtrips_and_reports_the_peer_version() {
        for version in [wire::MIN_PROTOCOL_VERSION, wire::PROTOCOL_VERSION] {
            let mut buf = Vec::new();
            write_preamble(&mut buf, version).unwrap();
            assert_eq!(buf.len(), PREAMBLE_LEN);
            let mut cur = Cursor::new(buf);
            let got = read_preamble(&mut cur, deadline_in(Duration::from_secs(1))).unwrap();
            assert_eq!(got, version);
        }
    }

    #[test]
    fn negotiation_picks_the_highest_common_version() {
        // A v2 node facing a v1-only peer drops to v1; two v2 nodes speak
        // v2; a v1-configured node never goes above v1.
        assert_eq!(negotiate(WireFormat::V2, 1), WireFormat::V1);
        assert_eq!(negotiate(WireFormat::V2, 2), WireFormat::V2);
        assert_eq!(negotiate(WireFormat::V1, 2), WireFormat::V1);
        assert_eq!(negotiate(WireFormat::V1, 1), WireFormat::V1);
    }

    #[test]
    fn preamble_rejects_bad_magic_and_version() {
        let mut good = Vec::new();
        write_preamble(&mut good, wire::PROTOCOL_VERSION).unwrap();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(
            read_preamble(
                &mut Cursor::new(bad_magic),
                deadline_in(Duration::from_secs(1))
            ),
            Err(Error::Transport("bad protocol magic"))
        );

        // Versions outside [MIN..=CURRENT] are refused: a future v3 peer
        // and a nonsense v0 peer alike.
        for version in [0, wire::PROTOCOL_VERSION + 1, u16::MAX] {
            let mut bad_version = Vec::new();
            write_preamble(&mut bad_version, version).unwrap();
            assert_eq!(
                read_preamble(
                    &mut Cursor::new(bad_version),
                    deadline_in(Duration::from_secs(1))
                ),
                Err(Error::Transport("protocol version mismatch"))
            );
        }

        // A peer that closes mid-handshake is a clean transport error.
        assert_eq!(
            read_preamble(
                &mut Cursor::new(&good[..3]),
                deadline_in(Duration::from_secs(1))
            ),
            Err(Error::Transport("peer closed during handshake"))
        );
    }

    #[test]
    fn frames_roundtrip_envelopes_and_ctrl() {
        let env = sample_env();
        for fmt in [WireFormat::V1, WireFormat::V2] {
            let mut buf = Vec::new();
            let spent = write_envelope(&mut buf, &env, fmt).unwrap();
            assert_eq!(spent as usize, buf.len());
            let FrameRead::Frame(payload) = read_frame(&mut Cursor::new(&buf)).unwrap() else {
                panic!("expected a frame");
            };
            // The reader is encoding-agnostic: the frame says which
            // codec it used.
            assert_eq!(decode_envelope_frame(&payload).unwrap(), env);
        }

        let ctrl = Ctrl::StatsReq;
        let mut buf = Vec::new();
        write_ctrl(&mut buf, &ctrl).unwrap();
        let FrameRead::Frame(payload) = read_frame(&mut Cursor::new(&buf)).unwrap() else {
            panic!("expected a frame");
        };
        assert_eq!(decode_ctrl_frame(&payload).unwrap(), ctrl);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        // 4 GiB length prefix: must fail fast with a transport error, not
        // attempt the allocation.
        let header = (u32::MAX).to_le_bytes();
        assert_eq!(
            read_frame(&mut Cursor::new(&header)).unwrap_err(),
            Error::Transport("frame exceeds maximum length")
        );
        // Largest in-bound length with no payload behind it: reader sees a
        // closed peer mid-frame, still no panic.
        let header = (wire::MAX_FRAME_LEN as u32).to_le_bytes();
        assert_eq!(
            read_frame(&mut Cursor::new(&header)).unwrap_err(),
            Error::Transport("peer closed mid-frame")
        );
    }

    #[test]
    fn eof_at_frame_boundary_is_clean() {
        assert!(matches!(
            read_frame(&mut Cursor::new(&[] as &[u8])).unwrap(),
            FrameRead::Eof
        ));
    }

    #[test]
    fn writer_refuses_oversized_frames() {
        let payload = vec![0u8; wire::MAX_FRAME_LEN + 1];
        let mut sink = Vec::new();
        assert_eq!(
            write_frame(&mut sink, &payload).unwrap_err(),
            Error::Transport("frame exceeds maximum length")
        );
        assert!(sink.is_empty(), "nothing written for a rejected frame");
    }

    proptest! {
        /// Satellite hardening property: a framed stream of arbitrary
        /// garbage yields transport errors or clean EOF — never a panic,
        /// and (via the MAX_FRAME_LEN check) never an OOM-sized
        /// allocation.
        #[test]
        fn prop_garbage_streams_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let mut cur = Cursor::new(&bytes);
            loop {
                match read_frame(&mut cur) {
                    Ok(FrameRead::Frame(payload)) => {
                        let _ = decode_envelope_frame(&payload);
                        let _ = decode_ctrl_frame(&payload);
                    }
                    Ok(FrameRead::Eof) => break,
                    Ok(FrameRead::TimedOut) => break, // Cursor never times out
                    Err(Error::Transport(_)) => break,
                    Err(e) => panic!("unexpected error class: {e}"),
                }
            }
        }

        /// Garbage prepended to the handshake is rejected as a transport
        /// error, never accepted.
        #[test]
        fn prop_garbage_preamble_is_transport_error(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            // Skip the rare case where garbage IS a valid preamble: right
            // magic and an in-range version.
            let valid = bytes.len() >= PREAMBLE_LEN
                && bytes[..4] == wire::MAGIC
                && (wire::MIN_PROTOCOL_VERSION..=wire::PROTOCOL_VERSION)
                    .contains(&u16::from_le_bytes([bytes[4], bytes[5]]));
            if !valid {
                let got =
                    read_preamble(&mut Cursor::new(&bytes), deadline_in(Duration::from_secs(1)));
                prop_assert!(matches!(got, Err(Error::Transport(_))));
            }
        }
    }
}
