//! WAN latency model, FIFO links and fault injection.

use std::collections::{HashMap, HashSet, VecDeque};

use paris_proto::{Endpoint, Envelope};
use paris_types::{DcId, WireFormat};
use rand::Rng;

/// One-way intra-DC latency in microseconds (≈ 0.5 ms RTT, typical for an
/// AWS availability zone).
pub const INTRA_DC_ONE_WAY_MICROS: u64 = 250;

/// Names of the ten AWS regions used by the paper's evaluation, in the
/// paper's order (§V-A): the 3-DC runs use the first three, the 5-DC runs
/// the first five.
pub const AWS_REGION_NAMES: [&str; 10] = [
    "virginia",
    "oregon",
    "ireland",
    "mumbai",
    "sydney",
    "canada",
    "seoul",
    "frankfurt",
    "singapore",
    "ohio",
];

/// Measured approximate inter-region RTTs in milliseconds (public AWS
/// latency tables, order as [`AWS_REGION_NAMES`]). Symmetric, zero on the
/// diagonal (intra-DC latency is handled separately).
const AWS_RTT_MS: [[u64; 10]; 10] = [
    // vir  ore  ire  mum  syd  can  seo  fra  sin  ohi
    [0, 70, 75, 185, 200, 15, 175, 90, 215, 12], // virginia
    [70, 0, 125, 215, 140, 60, 125, 160, 165, 50], // oregon
    [75, 125, 0, 120, 260, 70, 230, 25, 180, 85], // ireland
    [185, 215, 120, 0, 145, 195, 130, 110, 65, 195], // mumbai
    [200, 140, 260, 145, 0, 210, 135, 280, 95, 195], // sydney
    [15, 60, 70, 195, 210, 0, 180, 95, 220, 25], // canada
    [175, 125, 230, 130, 135, 180, 0, 240, 95, 170], // seoul
    [90, 160, 25, 110, 280, 95, 240, 0, 160, 100], // frankfurt
    [215, 165, 180, 65, 95, 220, 95, 160, 0, 205], // singapore
    [12, 50, 85, 195, 195, 25, 170, 100, 205, 0], // ohio
];

/// A symmetric matrix of one-way inter-DC latencies in microseconds.
#[derive(Debug, Clone)]
pub struct RegionMatrix {
    one_way_micros: Vec<Vec<u64>>,
}

impl RegionMatrix {
    /// The AWS deployment of the paper: DC ids map onto
    /// [`AWS_REGION_NAMES`] in order. Supports up to 10 DCs.
    ///
    /// # Panics
    ///
    /// Panics if `dcs > 10`.
    pub fn aws_10(dcs: u16) -> Self {
        assert!(dcs as usize <= 10, "the AWS matrix covers 10 regions");
        let n = dcs as usize;
        let mut m = vec![vec![0u64; n]; n];
        for (i, row) in m.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = if i == j {
                    INTRA_DC_ONE_WAY_MICROS
                } else {
                    AWS_RTT_MS[i][j] * 1_000 / 2
                };
            }
        }
        RegionMatrix { one_way_micros: m }
    }

    /// A uniform matrix: every inter-DC one-way latency is
    /// `one_way_micros`; intra-DC stays [`INTRA_DC_ONE_WAY_MICROS`].
    pub fn uniform(dcs: u16, one_way_micros: u64) -> Self {
        let n = dcs as usize;
        let mut m = vec![vec![one_way_micros; n]; n];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = INTRA_DC_ONE_WAY_MICROS;
        }
        RegionMatrix { one_way_micros: m }
    }

    /// Number of DCs covered.
    pub fn dcs(&self) -> u16 {
        self.one_way_micros.len() as u16
    }

    /// One-way latency between two DCs in microseconds.
    ///
    /// # Panics
    ///
    /// Panics if either DC id is out of range.
    pub fn one_way(&self, a: DcId, b: DcId) -> u64 {
        self.one_way_micros[a.index()][b.index()]
    }
}

/// The simulated network: latency model + per-link FIFO + fault injection.
///
/// The paper assumes "point-to-point lossless FIFO channels (e.g., a TCP
/// socket)" (§II-C). Accordingly:
///
/// * per ordered endpoint pair, deliveries never reorder (a message's
///   delivery time is clamped to be after the previous one on that link);
/// * a partitioned link *holds* traffic instead of dropping it, and
///   releases it in order when healed — mirroring TCP retransmission.
#[derive(Debug)]
pub struct SimNetwork {
    matrix: RegionMatrix,
    /// Jitter as a fraction of the base latency (e.g. 0.05 = ±5%).
    jitter: f64,
    /// Last scheduled delivery time per ordered (src, dst) endpoint pair.
    fifo: HashMap<(Endpoint, Endpoint), u64>,
    /// Symmetric set of partitioned DC pairs (stored with a ≤ b).
    blocked: HashSet<(DcId, DcId)>,
    /// Traffic held on blocked links, per (src DC, dst DC), FIFO.
    held: HashMap<(DcId, DcId), VecDeque<Envelope>>,
    /// Per-link latency multipliers (stored with a ≤ b): a degraded link,
    /// not a dead one. Absent entries mean the nominal latency; the map is
    /// only populated by fault injection, so fault-free runs never pay
    /// (or float-round through) a lookup result.
    link_scale: HashMap<(DcId, DcId), f64>,
    /// Wire encoding sizing the byte accounting (the simulator never
    /// serializes, but reports what each message would cost on the wire).
    wire: WireFormat,
    /// Count of messages sent (delivered or held).
    sent: u64,
    /// Total bytes sent (wire-encoded size), for bandwidth accounting.
    bytes: u64,
    /// The subset of `bytes` carried by background traffic (replication,
    /// heartbeats, stabilization gossip).
    background_bytes: u64,
}

impl SimNetwork {
    /// Creates a network over the given latency matrix with multiplicative
    /// jitter fraction `jitter` (0.0 disables jitter), accounting bytes in
    /// the default wire encoding.
    pub fn new(matrix: RegionMatrix, jitter: f64) -> Self {
        Self::with_wire(matrix, jitter, WireFormat::default())
    }

    /// Like [`SimNetwork::new`], but sizing the byte accounting in `wire`.
    pub fn with_wire(matrix: RegionMatrix, jitter: f64, wire: WireFormat) -> Self {
        SimNetwork {
            matrix,
            jitter,
            fifo: HashMap::new(),
            blocked: HashSet::new(),
            held: HashMap::new(),
            link_scale: HashMap::new(),
            wire,
            sent: 0,
            bytes: 0,
            background_bytes: 0,
        }
    }

    fn key(a: DcId, b: DcId) -> (DcId, DcId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Whether the link between two DCs is currently partitioned.
    pub fn is_blocked(&self, a: DcId, b: DcId) -> bool {
        self.blocked.contains(&Self::key(a, b))
    }

    /// Partitions the network between DCs `a` and `b` (both directions).
    /// In-flight messages already scheduled are unaffected (they left the
    /// source before the cut); new traffic is held.
    pub fn partition(&mut self, a: DcId, b: DcId) {
        self.blocked.insert(Self::key(a, b));
    }

    /// Partitions `dc` from every other DC (the paper's §III-C scenario:
    /// "if a DC partitions from the rest of the system, the UST freezes").
    pub fn isolate(&mut self, dc: DcId) {
        for other in 0..self.matrix.dcs() {
            let other = DcId(other);
            if other != dc {
                self.partition(dc, other);
            }
        }
    }

    /// Heals the partition between `a` and `b`, returning the held traffic
    /// (in FIFO order, both directions) so the caller can re-schedule it.
    pub fn heal(&mut self, a: DcId, b: DcId) -> Vec<Envelope> {
        self.blocked.remove(&Self::key(a, b));
        let mut out = Vec::new();
        if let Some(q) = self.held.remove(&(a, b)) {
            out.extend(q);
        }
        if let Some(q) = self.held.remove(&(b, a)) {
            out.extend(q);
        }
        out
    }

    /// Heals every partition involving `dc`, returning held traffic.
    pub fn heal_all(&mut self, dc: DcId) -> Vec<Envelope> {
        let mut out = Vec::new();
        for other in 0..self.matrix.dcs() {
            let other = DcId(other);
            if other != dc {
                out.extend(self.heal(dc, other));
            }
        }
        out
    }

    /// Multiplies the one-way latency of the `a`–`b` link by `factor`
    /// (≥ 1.0); `1.0` (or anything below) restores the nominal latency.
    /// Messages already scheduled keep their delivery times — only new
    /// traffic sees the degraded link, as with a real congestion onset.
    pub fn set_link_scale(&mut self, a: DcId, b: DcId, factor: f64) {
        let key = Self::key(a, b);
        if factor > 1.0 {
            self.link_scale.insert(key, factor);
        } else {
            self.link_scale.remove(&key);
        }
    }

    /// The current latency multiplier of the `a`–`b` link.
    pub fn link_scale(&self, a: DcId, b: DcId) -> f64 {
        self.link_scale
            .get(&Self::key(a, b))
            .copied()
            .unwrap_or(1.0)
    }

    /// Computes the delivery time for `env` sent at `now`, enforcing FIFO
    /// on the (src, dst) link. Returns `None` if the link is partitioned,
    /// in which case the envelope is held until healed.
    pub fn send<R: Rng>(&mut self, now: u64, env: Envelope, rng: &mut R) -> Option<u64> {
        self.sent += 1;
        let frame = paris_proto::wire::encoded_len_with(&env.msg, self.wire) as u64;
        self.bytes += frame;
        if env.msg.is_background() {
            self.background_bytes += frame;
        }
        let (sdc, ddc) = (env.src.dc(), env.dst.dc());
        if sdc != ddc && self.is_blocked(sdc, ddc) {
            self.held.entry((sdc, ddc)).or_default().push_back(env);
            return None;
        }
        let mut base = self.matrix.one_way(sdc, ddc);
        if sdc != ddc {
            if let Some(scale) = self.link_scale.get(&Self::key(sdc, ddc)) {
                base = ((base as f64) * scale).max(1.0) as u64;
            }
        }
        let delay = if self.jitter > 0.0 {
            let j = 1.0 + self.jitter * (rng.gen::<f64>() * 2.0 - 1.0);
            ((base as f64) * j).max(1.0) as u64
        } else {
            base
        };
        let link = (env.src, env.dst);
        let earliest = self.fifo.get(&link).copied().unwrap_or(0);
        let at = (now + delay).max(earliest.saturating_add(1));
        self.fifo.insert(link, at);
        Some(at)
    }

    /// Messages sent so far (including held ones).
    pub fn messages_sent(&self) -> u64 {
        self.sent
    }

    /// Total wire bytes sent so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes
    }

    /// Wire bytes of background traffic (replication, heartbeats,
    /// stabilization gossip) sent so far.
    pub fn background_bytes_sent(&self) -> u64 {
        self.background_bytes
    }

    /// The wire encoding sizing this network's byte accounting.
    pub fn wire(&self) -> WireFormat {
        self.wire
    }

    /// The latency matrix in use.
    pub fn matrix(&self) -> &RegionMatrix {
        &self.matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_proto::Msg;
    use paris_types::{ClientId, PartitionId, ServerId, Timestamp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn env(src_dc: u16, dst_dc: u16) -> Envelope {
        Envelope::new(
            ServerId::new(DcId(src_dc), PartitionId(0)),
            ServerId::new(DcId(dst_dc), PartitionId(1)),
            Msg::Heartbeat {
                partition: PartitionId(0),
                watermark: Timestamp::ZERO,
            },
        )
    }

    #[test]
    fn aws_matrix_is_symmetric_with_zero_free_diagonal() {
        let m = RegionMatrix::aws_10(10);
        for a in 0..10u16 {
            for b in 0..10u16 {
                assert_eq!(m.one_way(DcId(a), DcId(b)), m.one_way(DcId(b), DcId(a)));
                if a == b {
                    assert_eq!(m.one_way(DcId(a), DcId(b)), INTRA_DC_ONE_WAY_MICROS);
                } else {
                    assert!(
                        m.one_way(DcId(a), DcId(b)) >= 6_000,
                        "wan is ≥ 6 ms one-way"
                    );
                }
            }
        }
    }

    #[test]
    fn aws_matrix_subset_matches_paper_dc_choices() {
        // 3 DCs = Virginia, Oregon, Ireland (§V-A).
        let m = RegionMatrix::aws_10(3);
        assert_eq!(m.dcs(), 3);
        assert_eq!(m.one_way(DcId(0), DcId(1)), 35_000); // vir-ore 70ms RTT
        assert_eq!(m.one_way(DcId(0), DcId(2)), 37_500); // vir-ire 75ms RTT
    }

    #[test]
    #[should_panic(expected = "10 regions")]
    fn aws_matrix_rejects_more_than_ten() {
        let _ = RegionMatrix::aws_10(11);
    }

    #[test]
    fn uniform_matrix() {
        let m = RegionMatrix::uniform(4, 10_000);
        assert_eq!(m.one_way(DcId(0), DcId(3)), 10_000);
        assert_eq!(m.one_way(DcId(2), DcId(2)), INTRA_DC_ONE_WAY_MICROS);
    }

    #[test]
    fn send_applies_latency_and_fifo() {
        let mut net = SimNetwork::new(RegionMatrix::uniform(2, 1_000), 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let t1 = net.send(0, env(0, 1), &mut rng).unwrap();
        assert_eq!(t1, 1_000);
        // Second message on the same link sent at the same instant must be
        // delivered strictly after the first.
        let t2 = net.send(0, env(0, 1), &mut rng).unwrap();
        assert!(t2 > t1);
    }

    #[test]
    fn fifo_is_preserved_even_with_jitter() {
        let mut net = SimNetwork::new(RegionMatrix::uniform(2, 10_000), 0.5);
        let mut rng = StdRng::seed_from_u64(7);
        let mut last = 0;
        for i in 0..200 {
            let at = net.send(i, env(0, 1), &mut rng).unwrap();
            assert!(at > last, "delivery {i} reordered");
            last = at;
        }
    }

    #[test]
    fn distinct_links_are_independent() {
        let mut net = SimNetwork::new(RegionMatrix::uniform(2, 1_000), 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let a = net.send(0, env(0, 1), &mut rng).unwrap();
        // Reverse direction is a different link: no FIFO coupling.
        let b = net.send(0, env(1, 0), &mut rng).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn partition_holds_and_heal_releases_in_order() {
        let mut net = SimNetwork::new(RegionMatrix::uniform(3, 1_000), 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        net.partition(DcId(0), DcId(1));
        assert!(net.is_blocked(DcId(0), DcId(1)));
        assert!(net.send(0, env(0, 1), &mut rng).is_none());
        assert!(net.send(5, env(0, 1), &mut rng).is_none());
        // Unrelated link unaffected.
        assert!(net.send(0, env(0, 2), &mut rng).is_some());
        let released = net.heal(DcId(0), DcId(1));
        assert_eq!(released.len(), 2);
        assert!(!net.is_blocked(DcId(0), DcId(1)));
    }

    #[test]
    fn isolate_blocks_all_links_and_heal_all_restores() {
        let mut net = SimNetwork::new(RegionMatrix::uniform(4, 1_000), 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        net.isolate(DcId(2));
        for other in [0u16, 1, 3] {
            assert!(net.is_blocked(DcId(2), DcId(other)));
            assert!(net.send(0, env(2, other), &mut rng).is_none());
        }
        let released = net.heal_all(DcId(2));
        assert_eq!(released.len(), 3);
        for other in [0u16, 1, 3] {
            assert!(!net.is_blocked(DcId(2), DcId(other)));
        }
    }

    #[test]
    fn intra_dc_traffic_ignores_partitions() {
        let mut net = SimNetwork::new(RegionMatrix::uniform(2, 1_000), 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        net.isolate(DcId(0));
        let local = Envelope::new(
            ClientId::new(DcId(0), 1),
            ServerId::new(DcId(0), PartitionId(0)),
            Msg::StartTxReq {
                client_ust: Timestamp::ZERO,
            },
        );
        assert!(net.send(0, local, &mut rng).is_some());
    }

    #[test]
    fn slow_link_scales_latency_and_restore_undoes_it() {
        let mut net = SimNetwork::new(RegionMatrix::uniform(3, 1_000), 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        net.set_link_scale(DcId(0), DcId(1), 10.0);
        assert_eq!(net.link_scale(DcId(0), DcId(1)), 10.0);
        assert_eq!(net.send(0, env(0, 1), &mut rng), Some(10_000));
        // Symmetric: the reverse direction is scaled too.
        assert_eq!(net.send(0, env(1, 0), &mut rng), Some(10_000));
        // Other links keep the nominal latency.
        assert_eq!(net.send(0, env(0, 2), &mut rng), Some(1_000));
        net.set_link_scale(DcId(1), DcId(0), 1.0);
        assert_eq!(net.link_scale(DcId(0), DcId(1)), 1.0);
        let at = net.send(20_000, env(0, 1), &mut rng).unwrap();
        assert_eq!(at, 21_000);
    }

    #[test]
    fn counters_track_messages_and_bytes() {
        let mut net = SimNetwork::new(RegionMatrix::uniform(2, 1_000), 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        net.send(0, env(0, 1), &mut rng);
        net.send(0, env(0, 1), &mut rng);
        assert_eq!(net.messages_sent(), 2);
        assert!(net.bytes_sent() > 0);
    }

    #[test]
    fn byte_accounting_follows_the_configured_encoding() {
        let count = |wire: WireFormat| {
            let mut net = SimNetwork::with_wire(RegionMatrix::uniform(2, 1_000), 0.0, wire);
            let mut rng = StdRng::seed_from_u64(1);
            // One background heartbeat, one foreground transaction start.
            net.send(0, env(0, 1), &mut rng);
            net.send(
                0,
                Envelope::new(
                    ClientId::new(DcId(0), 1),
                    ServerId::new(DcId(1), PartitionId(0)),
                    Msg::StartTxReq {
                        client_ust: Timestamp::ZERO,
                    },
                ),
                &mut rng,
            );
            (net.bytes_sent(), net.background_bytes_sent())
        };
        let (v1_total, v1_bg) = count(WireFormat::V1);
        let (v2_total, v2_bg) = count(WireFormat::V2);
        assert!(v2_total < v1_total, "v2 must be smaller on the same load");
        assert!(v2_bg < v1_bg);
        assert!(v1_bg < v1_total, "foreground bytes are not background");
        let hb = env(0, 1);
        assert_eq!(
            v1_bg,
            paris_proto::wire::encoded_len(&hb.msg) as u64,
            "v1 sizing matches the v1 codec exactly"
        );
    }

    #[test]
    fn determinism_same_seed_same_schedule() {
        let run = |seed: u64| -> Vec<u64> {
            let mut net = SimNetwork::new(RegionMatrix::uniform(2, 10_000), 0.3);
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50)
                .map(|i| net.send(i * 10, env(0, 1), &mut rng).unwrap())
                .collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ");
    }
}
