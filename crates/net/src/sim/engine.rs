//! The discrete-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a simulated time.
///
/// `seq` is a global insertion counter: events at the same instant are
/// processed in insertion order, which makes whole-cluster simulations
/// bit-for-bit deterministic for a fixed seed.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// Simulated time (microseconds) at which the event fires.
    pub time: u64,
    /// Insertion sequence number (total tie-break).
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic earliest-first event queue.
///
/// # Example
///
/// ```
/// use paris_net::sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(20, "b");
/// q.push(10, "a");
/// q.push(20, "c");
/// assert_eq!(q.pop().unwrap().event, "a");
/// assert_eq!(q.pop().unwrap().event, "b"); // same-time events keep insertion order
/// assert_eq!(q.pop().unwrap().event, "c");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at simulated `time` (microseconds).
    pub fn push(&mut self, time: u64, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop()
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, 3);
        q.push(10, 1);
        q.push(20, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_events_keep_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(5, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(42, ());
        q.push(7, ());
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn interleaved_push_pop_is_stable() {
        let mut q = EventQueue::new();
        q.push(10, "a");
        q.push(10, "b");
        assert_eq!(q.pop().unwrap().event, "a");
        q.push(10, "c");
        // "b" was inserted before "c".
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "c");
    }
}
