//! CPU service-time model for simulated servers.

use paris_proto::Msg;

/// Per-message CPU costs of a partition server, in microseconds.
///
/// The paper's servers are `c5.xlarge` instances; throughput saturates when
/// server CPUs do. The simulation models each server as a single service
/// queue: handling a message occupies the server for `cost(msg)`
/// microseconds, and queued messages wait. The default constants are
/// calibrated so a server peaks at a few tens of thousands of simple
/// operations per second, matching the order of magnitude of the paper's
/// per-machine throughput (~250 KTx/s over 90 machines ≈ 2.8 KTx/s per
/// machine at 20 ops each).
///
/// BPR's extra cost for parking/waking blocked reads is modelled by
/// [`ServiceModel::block_overhead`], applied by the runtime once per
/// blocked read — the paper attributes BPR's throughput loss to exactly
/// this "synchronization overhead to block and unblock reads" (§V-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceModel {
    /// Fixed cost of starting a transaction (snapshot assignment).
    pub start_tx: u64,
    /// Coordinator-side fixed cost of a read fan-out.
    pub read_coord: u64,
    /// Cohort-side fixed cost of a slice read.
    pub read_slice_base: u64,
    /// Additional cohort cost per key read.
    pub read_per_key: u64,
    /// Cohort-side fixed cost of a prepare.
    pub prepare_base: u64,
    /// Additional prepare cost per key written.
    pub prepare_per_key: u64,
    /// Cost of handling a commit (either phase-2 message).
    pub commit: u64,
    /// Cost of applying one replicated transaction write.
    pub apply_per_key: u64,
    /// Fixed cost of a replication batch or heartbeat.
    pub replicate_base: u64,
    /// Cost of any stabilization message (report/root/broadcast).
    pub gossip: u64,
    /// Extra cost charged when a read must block and later resume (BPR).
    pub block_overhead: u64,
}

impl Default for ServiceModel {
    fn default() -> Self {
        ServiceModel {
            start_tx: 4,
            read_coord: 6,
            read_slice_base: 8,
            read_per_key: 2,
            prepare_base: 10,
            prepare_per_key: 2,
            commit: 3,
            apply_per_key: 2,
            replicate_base: 4,
            gossip: 5,
            block_overhead: 12,
        }
    }
}

impl ServiceModel {
    /// A zero-cost model: useful for tests that need pure protocol latency
    /// with no queueing effects.
    pub fn zero() -> Self {
        ServiceModel {
            start_tx: 0,
            read_coord: 0,
            read_slice_base: 0,
            read_per_key: 0,
            prepare_base: 0,
            prepare_per_key: 0,
            commit: 0,
            apply_per_key: 0,
            replicate_base: 0,
            gossip: 0,
            block_overhead: 0,
        }
    }

    /// CPU microseconds a server spends handling `msg`.
    pub fn cost(&self, msg: &Msg) -> u64 {
        match msg {
            Msg::StartTxReq { .. } => self.start_tx,
            Msg::StartTxResp { .. } | Msg::OpFailed { .. } => 0,
            Msg::ReadReq { .. } => self.read_coord,
            Msg::ReadResp { .. } => 0,
            Msg::CommitReq { .. } => self.read_coord,
            Msg::CommitResp { .. } => 0,
            Msg::ReadSliceReq { keys, .. } => {
                self.read_slice_base + self.read_per_key * keys.len() as u64
            }
            Msg::ReadSliceResp { .. } => 1,
            Msg::PrepareReq { writes, .. } => {
                self.prepare_base + self.prepare_per_key * writes.len() as u64
            }
            Msg::PrepareResp { .. } => 1,
            Msg::CommitTx { .. } => self.commit,
            // A coalesced batch pays the fixed per-message overhead once —
            // that is the entire point of batching; the per-key apply work
            // is unavoidable either way.
            Msg::Replicate { txs, .. } | Msg::ReplicateBatch { txs, .. } => {
                let keys: u64 = txs.iter().map(|t| t.writes.len() as u64).sum();
                self.replicate_base + self.apply_per_key * keys
            }
            Msg::Heartbeat { .. } => 1,
            Msg::GstReport { .. }
            | Msg::RootGst { .. }
            | Msg::UstBroadcast { .. }
            | Msg::GossipDigest { .. } => self.gossip,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_types::{DcId, Key, PartitionId, ServerId, Timestamp, TxId};

    fn tx() -> TxId {
        TxId::new(ServerId::new(DcId(0), PartitionId(0)), 1)
    }

    #[test]
    fn read_slice_scales_with_keys() {
        let m = ServiceModel::default();
        let one = Msg::ReadSliceReq {
            tx: tx(),
            snapshot: Timestamp::ZERO,
            keys: vec![Key(1)],
            reply_to: ServerId::new(DcId(0), PartitionId(0)),
        };
        let five = Msg::ReadSliceReq {
            tx: tx(),
            snapshot: Timestamp::ZERO,
            keys: (0..5).map(Key).collect(),
            reply_to: ServerId::new(DcId(0), PartitionId(0)),
        };
        assert_eq!(m.cost(&five) - m.cost(&one), 4 * m.read_per_key);
    }

    #[test]
    fn zero_model_costs_nothing() {
        let m = ServiceModel::zero();
        let msg = Msg::StartTxReq {
            client_ust: Timestamp::ZERO,
        };
        assert_eq!(m.cost(&msg), 0);
    }

    #[test]
    fn responses_are_cheap() {
        let m = ServiceModel::default();
        let resp = Msg::StartTxResp {
            tx: tx(),
            snapshot: Timestamp::ZERO,
        };
        assert_eq!(m.cost(&resp), 0, "client-side handling is free");
    }

    #[test]
    fn default_is_nonzero_for_server_work() {
        let m = ServiceModel::default();
        assert!(m.start_tx > 0 && m.prepare_base > 0 && m.gossip > 0);
    }
}
