//! Deterministic discrete-event simulation substrate.

mod engine;
mod network;
mod service;

pub use engine::{EventQueue, Scheduled};
pub use network::{RegionMatrix, SimNetwork, AWS_REGION_NAMES, INTRA_DC_ONE_WAY_MICROS};
pub use service::ServiceModel;
