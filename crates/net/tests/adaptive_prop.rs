//! Property tests of the adaptive flush controller.
//!
//! Three guarantees keep the batching layer's staleness promise honest:
//!
//! 1. the per-link deadline never leaves `[min_flush, max_flush]`, no
//!    matter what arrival pattern the link sees;
//! 2. the deadline is monotone in the observed arrival rate — a hotter
//!    link never waits longer;
//! 3. fixed mode is exactly the original coalescer: its offer/flush
//!    behaviour matches an independent model of the PR-2 fold (one
//!    deadline per link window, size trigger at `max_batch`, newest
//!    watermark survives), and an adaptive policy with collapsed bounds
//!    (`min == max`) is indistinguishable from fixed.

use paris_net::{Coalescer, LinkLoad, Offer};
use paris_proto::{Envelope, Msg};
use paris_types::{BatchConfig, DcId, FlushPolicy, PartitionId, ServerId, Timestamp, WireFormat};
use proptest::prelude::*;

fn hb(watermark: u64) -> Msg {
    Msg::Heartbeat {
        partition: PartitionId(0),
        watermark: Timestamp::from_physical_micros(watermark),
    }
}

fn env(watermark: u64) -> Envelope {
    Envelope::new(
        ServerId::new(DcId(0), PartitionId(0)),
        ServerId::new(DcId(1), PartitionId(0)),
        hb(watermark),
    )
}

proptest! {
    /// Bounds: whatever a link's history, the adaptive deadline stays in
    /// `[min_flush, max_flush]`.
    #[test]
    fn prop_adaptive_deadline_within_bounds(
        deltas in proptest::collection::vec(0u64..1_000_000, 1..100),
        min in 1u64..50_000,
        spread in 0u64..100_000,
    ) {
        let max = min + spread;
        let policy = FlushPolicy::Adaptive {
            min_flush_micros: min,
            max_flush_micros: max,
        };
        let mut load = LinkLoad::default();
        prop_assert!(load.deadline_micros(&policy) >= min);
        prop_assert!(load.deadline_micros(&policy) <= max);
        let mut now = 0u64;
        for d in deltas {
            now += d;
            load.observe(now);
            let deadline = load.deadline_micros(&policy);
            prop_assert!(deadline >= min, "deadline {deadline} below floor {min}");
            prop_assert!(deadline <= max, "deadline {deadline} above ceiling {max}");
        }
    }

    /// Monotonicity in the observed arrival rate: a smaller gap (higher
    /// rate) never yields a longer deadline.
    #[test]
    fn prop_adaptive_deadline_monotone_in_rate(
        g1 in 0u64..1_000_000,
        g2 in 0u64..1_000_000,
        min in 1u64..50_000,
        spread in 0u64..100_000,
    ) {
        let (fast, slow) = (g1.min(g2), g1.max(g2));
        let policy = FlushPolicy::Adaptive {
            min_flush_micros: min,
            max_flush_micros: min + spread,
        };
        prop_assert!(
            policy.interval_micros(Some(fast)) <= policy.interval_micros(Some(slow)),
            "rate monotonicity violated: gap {fast} -> {}, gap {slow} -> {}",
            policy.interval_micros(Some(fast)),
            policy.interval_micros(Some(slow)),
        );
        // An unknown gap is the quiet extreme: no observed gap may beat it.
        prop_assert!(policy.interval_micros(Some(slow)) <= policy.interval_micros(None));
    }

    /// Uniformly faster arrivals never stretch the deadline: feed two
    /// controllers the same arrival pattern, one at half the gaps, and
    /// the faster link's deadline can never exceed the slower one's.
    #[test]
    fn prop_faster_link_never_waits_longer(
        deltas in proptest::collection::vec(2u64..100_000, 2..60),
        min in 1u64..20_000,
        spread in 0u64..50_000,
    ) {
        let policy = FlushPolicy::Adaptive {
            min_flush_micros: min,
            max_flush_micros: min + spread,
        };
        let (mut fast, mut slow) = (LinkLoad::default(), LinkLoad::default());
        let (mut now_fast, mut now_slow) = (0u64, 0u64);
        for d in deltas {
            now_fast += d / 2;
            now_slow += d;
            fast.observe(now_fast);
            slow.observe(now_slow);
            prop_assert!(
                fast.deadline_micros(&policy) <= slow.deadline_micros(&policy),
                "half-gap link got deadline {} above full-gap link's {}",
                fast.deadline_micros(&policy),
                slow.deadline_micros(&policy),
            );
        }
    }

    /// Fixed mode is the original PR-2 coalescer: offer/flush behaviour
    /// matches an independent single-link model (window deadline = first
    /// enqueue + interval, size trigger at `max_batch`, heartbeats fold
    /// into the newest watermark, frame counts exact).
    #[test]
    fn prop_fixed_mode_matches_reference_fold(
        steps in proptest::collection::vec((0u64..20_000, 0u64..1_000, any::<bool>()), 1..200),
        max_batch in 2usize..10,
        interval in 1u64..30_000,
    ) {
        let mut c = Coalescer::new(BatchConfig::fixed(max_batch, interval), WireFormat::default());
        // Reference model of one link's window.
        let mut window: Option<(u64, u32, u64)> = None; // (due, frames, max_wm)
        let mut now = 0u64;
        for (advance, wm, do_poll) in steps {
            now += advance;
            if do_poll {
                let flushed = c.poll(now);
                match window {
                    Some((due, frames, max_wm)) if due <= now => {
                        prop_assert_eq!(flushed.len(), 1, "one batch per due link");
                        match &flushed[0].msg {
                            Msg::ReplicateBatch { frames: f, watermark, txs, .. } => {
                                prop_assert_eq!(*f, frames);
                                prop_assert_eq!(*watermark, Timestamp::from_physical_micros(max_wm));
                                prop_assert!(txs.is_empty());
                            }
                            other => prop_assert!(false, "unexpected {}", other.kind()),
                        }
                        window = None;
                    }
                    _ => prop_assert!(flushed.is_empty(), "flushed before the deadline"),
                }
            } else {
                match c.offer(env(wm), now) {
                    Offer::Pass(_) => prop_assert!(false, "background frame passed through"),
                    Offer::Flush(flushed) => {
                        let (_, frames, max_wm) = window.take().unwrap_or((0, 0, 0));
                        prop_assert_eq!(frames as usize + 1, max_batch, "size trigger only at max_batch");
                        prop_assert_eq!(flushed.len(), 1);
                        match &flushed[0].msg {
                            Msg::ReplicateBatch { frames: f, watermark, .. } => {
                                prop_assert_eq!(*f as usize, max_batch);
                                prop_assert_eq!(
                                    *watermark,
                                    Timestamp::from_physical_micros(max_wm.max(wm))
                                );
                            }
                            other => prop_assert!(false, "unexpected {}", other.kind()),
                        }
                    }
                    Offer::Queued { next_due } => {
                        let (due, frames, max_wm) = match window {
                            None => (now + interval, 1, wm),
                            Some((due, frames, max_wm)) => (due, frames + 1, max_wm.max(wm)),
                        };
                        window = Some((due, frames, max_wm));
                        prop_assert_eq!(
                            next_due, due,
                            "fixed deadline must be first-enqueue + interval"
                        );
                    }
                }
            }
        }
    }

    /// Collapsed adaptive bounds (`min == max`) are observationally
    /// identical to the fixed policy for any arrival/poll pattern.
    #[test]
    fn prop_collapsed_adaptive_equals_fixed(
        steps in proptest::collection::vec((0u64..20_000, 0u64..1_000, any::<bool>()), 1..200),
        max_batch in 2usize..10,
        interval in 1u64..30_000,
    ) {
        let mut fixed = Coalescer::new(BatchConfig::fixed(max_batch, interval), WireFormat::default());
        let mut collapsed = Coalescer::new(BatchConfig::adaptive(max_batch, interval, interval), WireFormat::default());
        let mut now = 0u64;
        for (advance, wm, do_poll) in steps {
            now += advance;
            if do_poll {
                let a = fixed.poll(now);
                let b = collapsed.poll(now);
                prop_assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    prop_assert_eq!(&x.msg, &y.msg);
                }
            } else {
                match (fixed.offer(env(wm), now), collapsed.offer(env(wm), now)) {
                    (Offer::Queued { next_due: a }, Offer::Queued { next_due: b }) => {
                        prop_assert_eq!(a, b);
                    }
                    (Offer::Flush(a), Offer::Flush(b)) => {
                        prop_assert_eq!(a.len(), b.len());
                        for (x, y) in a.iter().zip(&b) {
                            prop_assert_eq!(&x.msg, &y.msg);
                        }
                    }
                    (a, b) => prop_assert!(false, "diverged: {a:?} vs {b:?}"),
                }
            }
        }
        prop_assert_eq!(fixed.stats(), collapsed.stats());
    }
}
