//! Property tests of the network substrates' core guarantees.

use paris_net::sim::{EventQueue, RegionMatrix, SimNetwork};
use paris_proto::{Envelope, Msg};
use paris_types::{DcId, PartitionId, ServerId, Timestamp};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// The event queue is a stable priority queue: pops come out sorted by
    /// (time, insertion order) no matter the push order.
    #[test]
    fn prop_event_queue_is_stable_and_sorted(
        times in proptest::collection::vec(0u64..10_000, 1..200)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut prev: Option<(u64, usize)> = None;
        while let Some(ev) = q.pop() {
            let key = (ev.time, ev.event);
            if let Some(p) = prev {
                prop_assert!(p.0 <= key.0, "time order violated");
                if p.0 == key.0 {
                    prop_assert!(p.1 < key.1, "insertion order violated at equal times");
                }
            }
            prev = Some(key);
        }
    }

    /// Per-link FIFO holds for any interleaving of sends across links and
    /// any jitter level.
    #[test]
    fn prop_sim_network_fifo_per_link(
        sends in proptest::collection::vec((0u16..3, 0u16..3, 0u64..100), 1..300),
        jitter in 0.0f64..0.9,
        seed in any::<u64>(),
    ) {
        let mut net = SimNetwork::new(RegionMatrix::uniform(3, 5_000), jitter);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut now = 0;
        let mut last: std::collections::HashMap<(u16, u16), u64> = std::collections::HashMap::new();
        for (src, dst, advance) in sends {
            now += advance;
            let env = Envelope::new(
                ServerId::new(DcId(src), PartitionId(0)),
                ServerId::new(DcId(dst), PartitionId(1)),
                Msg::Heartbeat { partition: PartitionId(0), watermark: Timestamp::ZERO },
            );
            let at = net.send(now, env, &mut rng).expect("no partitions active");
            prop_assert!(at > now, "delivery strictly after send");
            if let Some(prev) = last.insert((src, dst), at) {
                prop_assert!(at > prev, "link ({src},{dst}) reordered");
            }
        }
    }

    /// Partition + heal never loses or duplicates messages.
    #[test]
    fn prop_partition_heal_conserves_messages(
        n_before in 0usize..20,
        n_during in 1usize..20,
    ) {
        let mut net = SimNetwork::new(RegionMatrix::uniform(2, 1_000), 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let env = || Envelope::new(
            ServerId::new(DcId(0), PartitionId(0)),
            ServerId::new(DcId(1), PartitionId(0)),
            Msg::Heartbeat { partition: PartitionId(0), watermark: Timestamp::ZERO },
        );
        let mut delivered = 0;
        for _ in 0..n_before {
            if net.send(0, env(), &mut rng).is_some() {
                delivered += 1;
            }
        }
        net.partition(DcId(0), DcId(1));
        for _ in 0..n_during {
            prop_assert!(net.send(10, env(), &mut rng).is_none(), "held during cut");
        }
        let released = net.heal(DcId(0), DcId(1));
        prop_assert_eq!(released.len(), n_during, "exactly the held traffic");
        prop_assert_eq!(delivered, n_before);
        // Subsequent sends flow again.
        prop_assert!(net.send(20, env(), &mut rng).is_some());
    }
}

#[test]
fn aws_matrix_triangle_inequality_is_mostly_sane() {
    // WAN routing does not guarantee the triangle inequality, but gross
    // violations (A→C ≫ A→B→C by 2×) would indicate a data-entry mistake.
    let m = RegionMatrix::aws_10(10);
    for a in 0..10u16 {
        for b in 0..10u16 {
            for c in 0..10u16 {
                if a == b || b == c || a == c {
                    continue;
                }
                let direct = m.one_way(DcId(a), DcId(c));
                let via = m.one_way(DcId(a), DcId(b)) + m.one_way(DcId(b), DcId(c));
                assert!(
                    direct < via * 2,
                    "suspicious RTT: {a}→{c} direct {direct} vs via {b} {via}"
                );
            }
        }
    }
}
