//! Versioned items and the total order used for conflict resolution.

use crate::{DcId, Key, Timestamp, TxId, Value};

/// One version of a key: the paper's item tuple `⟨k, v, ut, id_T, sr⟩`
/// (§IV-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Version {
    /// The key this version belongs to (`k`).
    pub key: Key,
    /// The written value (`v`).
    pub value: Value,
    /// Update (commit) timestamp (`ut`): the commit time of the creating
    /// transaction, which determines the snapshot the version belongs to.
    pub ut: Timestamp,
    /// Identifier of the transaction that created the version (`id_T`).
    pub tx: TxId,
    /// Source DC where the version was created (`sr`).
    pub src: DcId,
}

impl Version {
    /// Creates a version.
    pub fn new(key: Key, value: Value, ut: Timestamp, tx: TxId, src: DcId) -> Self {
        Version {
            key,
            value,
            ut,
            tx,
            src,
        }
    }

    /// The total-order sort key for this version.
    #[inline]
    pub fn order(&self) -> VersionOrd {
        VersionOrd {
            ut: self.ut,
            tx: self.tx,
            src: self.src,
        }
    }
}

/// Total order on (possibly concurrent) versions of the same key.
///
/// PaRiS resolves conflicting writes with last-writer-wins on the update
/// timestamp; ties are settled "by a concatenation of timestamp, transaction
/// id and source data center id, in this order" (§IV-B). Deriving `Ord` on
/// the fields in that order implements exactly that rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VersionOrd {
    /// Update timestamp (primary criterion).
    pub ut: Timestamp,
    /// Creating transaction id (first tie-break).
    pub tx: TxId,
    /// Source DC id (second tie-break).
    pub src: DcId,
}

/// An entry of a transaction's write set: the `⟨k, v⟩` pairs buffered at the
/// client (Alg. 1 lines 21–25) and shipped in `PrepareReq` (Alg. 2 line 23).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteSetEntry {
    /// Key to update.
    pub key: Key,
    /// New value.
    pub value: Value,
}

impl WriteSetEntry {
    /// Creates a write-set entry.
    pub fn new(key: Key, value: Value) -> Self {
        WriteSetEntry { key, value }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PartitionId, ServerId};

    fn tx(dc: u16, seq: u64) -> TxId {
        TxId::new(ServerId::new(DcId(dc), PartitionId(0)), seq)
    }

    fn ver(ut: u64, txdc: u16, txseq: u64, src: u16) -> Version {
        Version::new(
            Key(1),
            Value::from("x"),
            Timestamp::from_physical_micros(ut),
            tx(txdc, txseq),
            DcId(src),
        )
    }

    #[test]
    fn order_is_timestamp_first() {
        assert!(ver(10, 0, 0, 0).order() < ver(11, 0, 0, 0).order());
        // Even when the later tx id is "smaller".
        assert!(ver(10, 9, 9, 9).order() < ver(11, 0, 0, 0).order());
    }

    #[test]
    fn order_breaks_timestamp_ties_with_tx_id() {
        let a = ver(10, 0, 1, 3);
        let b = ver(10, 0, 2, 0);
        assert!(a.order() < b.order());
    }

    #[test]
    fn order_breaks_tx_ties_with_source_dc() {
        // Same ut, same tx id (possible only across replicas of the same
        // logical write — still must be totally ordered).
        let mut a = ver(10, 1, 1, 0);
        let mut b = ver(10, 1, 1, 2);
        a.tx = b.tx;
        assert!(a.order() < b.order());
        b.src = DcId(0);
        assert_eq!(a.order(), b.order());
    }

    #[test]
    fn version_carries_paper_tuple_fields() {
        let v = ver(42, 1, 7, 1);
        assert_eq!(v.key, Key(1));
        assert_eq!(v.ut.physical_micros(), 42);
        assert_eq!(v.tx.seq, 7);
        assert_eq!(v.src, DcId(1));
    }

    #[test]
    fn write_set_entry_holds_kv() {
        let e = WriteSetEntry::new(Key(9), Value::from("v"));
        assert_eq!(e.key, Key(9));
        assert_eq!(e.value.as_bytes(), b"v");
    }
}
