//! Deterministic fault schedules: the vocabulary of the chaos suite.
//!
//! A [`FaultPlan`] is a list of timed [`FaultEvent`]s — DC crash/rejoin,
//! inter-DC partition + heal, per-link slowdown, clock-skew step — that a
//! cluster backend replays while a workload runs. The plan itself is pure
//! data: it carries no randomness and no backend knowledge, so the same
//! plan drives the deterministic simulator (where events fire at exact
//! virtual times and every run is bit-reproducible per seed) and the
//! threaded backend (where events fire on the wall clock).
//!
//! Plans are validated against the deployment shape at build time:
//! [`FaultPlan::validate`] rejects events that name a DC outside the
//! topology, a self-link, or a nonsensical slowdown factor, so a typo in
//! a chaos scenario fails the build step instead of silently targeting
//! the wrong link mid-run.
//!
//! # Example
//!
//! ```
//! use paris_types::{DcId, FaultPlan};
//!
//! let plan = FaultPlan::new()
//!     .partition_link(200_000, DcId(0), DcId(1))
//!     .slow_link(250_000, DcId(1), DcId(2), 10.0)
//!     .heal_link(600_000, DcId(0), DcId(1))
//!     .restore_link(600_000, DcId(1), DcId(2));
//! assert!(plan.validate(3).is_ok());
//! // DC 7 does not exist in a 3-DC deployment:
//! assert!(plan.clone().crash_dc(100, DcId(7)).validate(3).is_err());
//! ```

use crate::error::ConfigError;
use crate::ids::DcId;

/// One scripted fault, without its firing time. See [`FaultEvent`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum FaultKind {
    /// The whole DC drops off the network (every inter-DC link to it is
    /// cut). In-flight and future traffic to and from it is *held*, not
    /// dropped — the TCP model — and delivered on [`FaultKind::RejoinDc`].
    /// On backends with real processes (socket), a crash additionally
    /// kills the DC's server processes.
    CrashDc(DcId),
    /// Reverses [`FaultKind::CrashDc`]: reconnects the DC and releases
    /// all traffic held while it was away.
    RejoinDc(DcId),
    /// Cuts the single bidirectional link between two DCs; traffic is
    /// held until [`FaultKind::HealLink`].
    PartitionLink(DcId, DcId),
    /// Reverses [`FaultKind::PartitionLink`] and releases held traffic.
    HealLink(DcId, DcId),
    /// Multiplies the one-way latency of the link between two DCs by
    /// `factor` (≥ 1.0) — a congested or degraded link, not a dead one.
    SlowLink {
        /// One endpoint of the link (unordered).
        a: DcId,
        /// The other endpoint.
        b: DcId,
        /// Latency multiplier; `1.0` restores the nominal latency.
        factor: f64,
    },
    /// Restores the nominal latency of a link slowed by
    /// [`FaultKind::SlowLink`].
    RestoreLink(DcId, DcId),
    /// Steps every physical clock in one DC by `delta_micros`
    /// (positive or negative) — the NTP-jump / VM-migration scenario the
    /// HLC must absorb without violating snapshot monotonicity.
    SkewClock {
        /// The DC whose clocks jump.
        dc: DcId,
        /// The step, in microseconds; applied on top of any existing skew.
        delta_micros: i64,
    },
}

/// One scripted fault with its firing time, relative to plan start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires, in microseconds after the plan is installed
    /// (virtual time on the simulator, wall time on the thread backend).
    pub at_micros: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, backend-agnostic schedule of timed faults.
///
/// Build one with the fluent methods, validate with
/// [`FaultPlan::validate`] (cluster builders do this for you), and hand
/// it to `ClusterBuilder::fault_plan` or `Cluster::install_fault_plan`.
/// Events fire in time order; ties fire in insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Appends an arbitrary event.
    pub fn push(mut self, at_micros: u64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at_micros, kind });
        self
    }

    /// The whole DC drops off the network at `at_micros`.
    pub fn crash_dc(self, at_micros: u64, dc: DcId) -> Self {
        self.push(at_micros, FaultKind::CrashDc(dc))
    }

    /// The DC reconnects and held traffic is released.
    pub fn rejoin_dc(self, at_micros: u64, dc: DcId) -> Self {
        self.push(at_micros, FaultKind::RejoinDc(dc))
    }

    /// Cuts the `a`–`b` link (both directions).
    pub fn partition_link(self, at_micros: u64, a: DcId, b: DcId) -> Self {
        self.push(at_micros, FaultKind::PartitionLink(a, b))
    }

    /// Reconnects the `a`–`b` link and releases held traffic.
    pub fn heal_link(self, at_micros: u64, a: DcId, b: DcId) -> Self {
        self.push(at_micros, FaultKind::HealLink(a, b))
    }

    /// Multiplies the `a`–`b` link latency by `factor` (≥ 1.0).
    pub fn slow_link(self, at_micros: u64, a: DcId, b: DcId, factor: f64) -> Self {
        self.push(at_micros, FaultKind::SlowLink { a, b, factor })
    }

    /// Restores the nominal `a`–`b` link latency.
    pub fn restore_link(self, at_micros: u64, a: DcId, b: DcId) -> Self {
        self.push(at_micros, FaultKind::RestoreLink(a, b))
    }

    /// Steps every clock in `dc` by `delta_micros`.
    pub fn skew_clock(self, at_micros: u64, dc: DcId, delta_micros: i64) -> Self {
        self.push(at_micros, FaultKind::SkewClock { dc, delta_micros })
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The firing time of the last event, or 0 for an empty plan.
    pub fn horizon_micros(&self) -> u64 {
        self.events.iter().map(|e| e.at_micros).max().unwrap_or(0)
    }

    /// The events sorted by firing time (stable: ties keep insertion
    /// order) — the order backends replay them in.
    pub fn sorted_events(&self) -> Vec<FaultEvent> {
        let mut out = self.events.clone();
        out.sort_by_key(|e| e.at_micros);
        out
    }

    /// Checks every event against a deployment with `dcs` data centers.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when an event names a DC outside
    /// `0..dcs`, a link from a DC to itself, or a slowdown factor that is
    /// not a finite number ≥ 1.0.
    pub fn validate(&self, dcs: u16) -> Result<(), ConfigError> {
        let dc_ok = |dc: DcId| dc.0 < dcs;
        for event in &self.events {
            match event.kind {
                FaultKind::CrashDc(dc) | FaultKind::RejoinDc(dc) => {
                    if !dc_ok(dc) {
                        return Err(ConfigError::new("fault plan targets a DC out of range"));
                    }
                }
                FaultKind::SkewClock { dc, .. } => {
                    if !dc_ok(dc) {
                        return Err(ConfigError::new("fault plan targets a DC out of range"));
                    }
                }
                FaultKind::PartitionLink(a, b)
                | FaultKind::HealLink(a, b)
                | FaultKind::RestoreLink(a, b)
                | FaultKind::SlowLink { a, b, .. } => {
                    if !dc_ok(a) || !dc_ok(b) {
                        return Err(ConfigError::new("fault plan targets a DC out of range"));
                    }
                    if a == b {
                        return Err(ConfigError::new(
                            "fault plan targets a link from a DC to itself",
                        ));
                    }
                }
            }
            if let FaultKind::SlowLink { factor, .. } = event.kind {
                if !factor.is_finite() || factor < 1.0 {
                    return Err(ConfigError::new(
                        "fault plan slow-link factor must be a finite number >= 1.0",
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluent_plan_builds_in_insertion_order() {
        let plan = FaultPlan::new()
            .crash_dc(500, DcId(1))
            .rejoin_dc(900, DcId(1))
            .partition_link(100, DcId(0), DcId(2));
        assert_eq!(plan.events().len(), 3);
        assert_eq!(plan.horizon_micros(), 900);
        let sorted = plan.sorted_events();
        assert_eq!(sorted[0].kind, FaultKind::PartitionLink(DcId(0), DcId(2)));
        assert_eq!(sorted[2].kind, FaultKind::RejoinDc(DcId(1)));
    }

    #[test]
    fn validate_accepts_in_range_events() {
        let plan = FaultPlan::new()
            .crash_dc(0, DcId(2))
            .partition_link(1, DcId(0), DcId(1))
            .slow_link(2, DcId(1), DcId(2), 25.0)
            .skew_clock(3, DcId(0), -40_000);
        assert!(plan.validate(3).is_ok());
    }

    #[test]
    fn validate_rejects_dc_out_of_range() {
        assert!(FaultPlan::new().crash_dc(0, DcId(3)).validate(3).is_err());
        assert!(FaultPlan::new()
            .skew_clock(0, DcId(9), 1)
            .validate(3)
            .is_err());
        assert!(FaultPlan::new()
            .heal_link(0, DcId(0), DcId(3))
            .validate(3)
            .is_err());
    }

    #[test]
    fn validate_rejects_self_link_and_bad_factor() {
        assert!(FaultPlan::new()
            .partition_link(0, DcId(1), DcId(1))
            .validate(3)
            .is_err());
        assert!(FaultPlan::new()
            .slow_link(0, DcId(0), DcId(1), 0.5)
            .validate(3)
            .is_err());
        assert!(FaultPlan::new()
            .slow_link(0, DcId(0), DcId(1), f64::NAN)
            .validate(3)
            .is_err());
    }

    #[test]
    fn ties_keep_insertion_order() {
        let plan = FaultPlan::new()
            .partition_link(100, DcId(0), DcId(1))
            .heal_link(100, DcId(0), DcId(1));
        let sorted = plan.sorted_events();
        assert_eq!(sorted[0].kind, FaultKind::PartitionLink(DcId(0), DcId(1)));
        assert_eq!(sorted[1].kind, FaultKind::HealLink(DcId(0), DcId(1)));
    }
}
