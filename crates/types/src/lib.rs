//! Core vocabulary types for the PaRiS reproduction.
//!
//! This crate defines the identifiers, timestamps, versioned items, cluster
//! configuration and error types shared by every other crate in the
//! workspace. It is intentionally dependency-free.
//!
//! # Overview
//!
//! The paper identifies key versions and transactional snapshots with a
//! *single scalar timestamp* produced by a Hybrid Logical Clock (HLC).
//! [`Timestamp`] packs the HLC (48-bit physical microseconds + 16-bit logical
//! counter) into one `u64`, so comparing timestamps is a plain integer
//! comparison and the wire representation is exactly 8 bytes — the
//! "1 ts" metadata cost reported in Table I of the paper.
//!
//! # Example
//!
//! ```
//! use paris_types::{ClusterConfig, Timestamp};
//!
//! let cfg = ClusterConfig::builder()
//!     .dcs(5)
//!     .partitions(45)
//!     .replication_factor(2)
//!     .build()
//!     .expect("valid configuration");
//! assert_eq!(cfg.servers_per_dc(), 18);
//!
//! let ts = Timestamp::from_parts(1_000_000, 3);
//! assert!(ts < Timestamp::from_parts(1_000_000, 4));
//! assert!(ts < Timestamp::from_parts(1_000_001, 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod fault;
mod ids;
mod keyspace;
mod timestamp;
mod version;

pub use config::{
    BatchConfig, ClusterConfig, ClusterConfigBuilder, FlushPolicy, Intervals, Mode, WireFormat,
};
pub use error::{ConfigError, Error};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use ids::{ClientId, DcId, PartitionId, ReplicaIdx, ServerId, TxId};
pub use keyspace::{Key, Value};
pub use timestamp::Timestamp;
pub use version::{Version, VersionOrd, WriteSetEntry};
