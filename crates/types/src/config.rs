//! Cluster configuration shared by every substrate and the protocol core.

use crate::error::ConfigError;

/// Protocol variant to run.
///
/// The paper evaluates PaRiS against **BPR** (Blocking Partial Replication,
/// §V): an identical system except that transaction snapshots are fresh
/// (coordinator clock) and reads block until the serving partition has
/// installed the snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// PaRiS: non-blocking reads from the UST-stable snapshot plus the
    /// client-side write cache.
    #[default]
    Paris,
    /// BPR: fresh snapshots, blocking reads (the paper's baseline).
    Bpr,
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::Paris => write!(f, "PaRiS"),
            Mode::Bpr => write!(f, "BPR"),
        }
    }
}

/// Periods of the background protocols, in simulated/real microseconds.
///
/// The paper runs all stabilization protocols every 5 ms (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Intervals {
    /// ∆R: period of the apply/replicate tick (Alg. 4 line 5).
    pub replication_micros: u64,
    /// ∆G: period of the intra-DC GST aggregation (Alg. 4 line 34).
    pub gst_micros: u64,
    /// ∆U: period of the UST computation at DC roots (Alg. 4 line 36).
    pub ust_micros: u64,
    /// Period of the garbage-collection aggregation (§IV-B).
    pub gc_micros: u64,
}

impl Default for Intervals {
    /// Paper defaults: 5 ms stabilization everywhere; GC every second.
    fn default() -> Self {
        Intervals {
            replication_micros: 5_000,
            gst_micros: 5_000,
            ust_micros: 5_000,
            gc_micros: 1_000_000,
        }
    }
}

/// Coalescing policy for background (replication + stabilization) traffic.
///
/// When enabled, the network substrate queues background frames per link
/// and folds them into one `ReplicateBatch` / `GossipDigest` wire message,
/// flushing a link when [`BatchConfig::max_batch`] frames have accumulated
/// or the oldest queued frame has waited
/// [`BatchConfig::flush_interval_micros`]. Foreground transaction traffic
/// is never batched (it is latency-critical).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Flush a link once this many logical frames are queued on it.
    /// `0` or `1` disables batching (every frame ships immediately).
    pub max_batch: usize,
    /// Flush a link once its oldest queued frame is this old, in
    /// microseconds. Bounds the extra staleness batching introduces.
    pub flush_interval_micros: u64,
}

impl BatchConfig {
    /// Batching off: every envelope ships as its own wire message.
    pub const DISABLED: BatchConfig = BatchConfig {
        max_batch: 1,
        flush_interval_micros: 0,
    };

    /// Whether this configuration actually coalesces anything.
    pub fn is_enabled(&self) -> bool {
        self.max_batch > 1
    }
}

impl Default for BatchConfig {
    /// Batching is opt-in; the default keeps the paper's one-frame-per-tick
    /// wire behaviour.
    fn default() -> Self {
        BatchConfig::DISABLED
    }
}

/// Static description of a PaRiS deployment.
///
/// `M` DCs, `N` partitions, replication factor `R`: each partition is
/// replicated at `R` DCs, so each DC hosts `N·R/M` servers when the
/// placement is balanced (the paper's deployments always are: e.g. 45
/// partitions × R=2 over 5 DCs = 18 servers/DC).
///
/// Use [`ClusterConfig::builder`] to construct one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of data centers `M`.
    pub dcs: u16,
    /// Number of partitions `N`.
    pub partitions: u32,
    /// Replication factor `R` (paper default: 2).
    pub replication_factor: u16,
    /// Keys per partition in the workload keyspace.
    pub keys_per_partition: u64,
    /// Payload size of written values, in bytes (paper: 8).
    pub value_size: usize,
    /// Background protocol periods.
    pub intervals: Intervals,
    /// Protocol variant.
    pub mode: Mode,
    /// Maximum absolute physical-clock skew injected per server, in
    /// microseconds (NTP-like; 0 disables skew).
    pub max_clock_skew_micros: u64,
    /// Background-traffic coalescing policy (off by default).
    pub batch: BatchConfig,
}

impl ClusterConfig {
    /// Starts building a configuration with the paper's defaults.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder::new()
    }

    /// Number of servers each DC hosts under balanced placement.
    ///
    /// Exact when `N·R` is divisible by `M` (all paper deployments);
    /// otherwise DCs differ by at most one server and this returns the
    /// rounded-down count.
    pub fn servers_per_dc(&self) -> u32 {
        self.partitions * u32::from(self.replication_factor) / u32::from(self.dcs)
    }

    /// Total number of servers (partition replicas) in the system.
    pub fn total_servers(&self) -> u32 {
        self.partitions * u32::from(self.replication_factor)
    }

    /// Total number of keys in the keyspace.
    pub fn total_keys(&self) -> u64 {
        u64::from(self.partitions) * self.keys_per_partition
    }

    /// Validates the invariants the protocol relies on.
    fn validate(&self) -> Result<(), ConfigError> {
        if self.dcs == 0 {
            return Err(ConfigError::new("at least one DC is required"));
        }
        if self.partitions == 0 {
            return Err(ConfigError::new("at least one partition is required"));
        }
        if self.replication_factor == 0 {
            return Err(ConfigError::new("replication factor must be at least 1"));
        }
        if self.replication_factor > self.dcs {
            return Err(ConfigError::new(
                "replication factor cannot exceed the number of DCs",
            ));
        }
        if self.keys_per_partition == 0 {
            return Err(ConfigError::new("keys per partition must be at least 1"));
        }
        if self.intervals.replication_micros == 0
            || self.intervals.gst_micros == 0
            || self.intervals.ust_micros == 0
            || self.intervals.gc_micros == 0
        {
            return Err(ConfigError::new("protocol intervals must be non-zero"));
        }
        if self.batch.is_enabled() && self.batch.flush_interval_micros == 0 {
            return Err(ConfigError::new(
                "batching needs a non-zero flush interval (unbounded queues otherwise)",
            ));
        }
        if self.batch.is_enabled() && self.batch.flush_interval_micros >= self.intervals.gc_micros {
            return Err(ConfigError::new(
                "batch flush interval must stay below the GC period",
            ));
        }
        Ok(())
    }
}

impl Default for ClusterConfig {
    /// The paper's default deployment: 5 DCs, 45 partitions, R = 2
    /// (18 servers per DC), 8-byte items.
    fn default() -> Self {
        ClusterConfig::builder()
            .build()
            .expect("defaults are valid")
    }
}

/// Builder for [`ClusterConfig`].
///
/// ```
/// use paris_types::{ClusterConfig, Mode};
///
/// let cfg = ClusterConfig::builder()
///     .dcs(3)
///     .partitions(9)
///     .replication_factor(2)
///     .mode(Mode::Bpr)
///     .build()?;
/// assert_eq!(cfg.servers_per_dc(), 6);
/// # Ok::<(), paris_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClusterConfigBuilder {
    cfg: ClusterConfig,
}

impl ClusterConfigBuilder {
    /// Creates a builder seeded with the paper's default deployment.
    pub fn new() -> Self {
        ClusterConfigBuilder {
            cfg: ClusterConfig {
                dcs: 5,
                partitions: 45,
                replication_factor: 2,
                keys_per_partition: 100_000,
                value_size: 8,
                intervals: Intervals::default(),
                mode: Mode::Paris,
                max_clock_skew_micros: 500,
                batch: BatchConfig::DISABLED,
            },
        }
    }

    /// Sets the number of DCs `M`.
    pub fn dcs(mut self, dcs: u16) -> Self {
        self.cfg.dcs = dcs;
        self
    }

    /// Sets the number of partitions `N`.
    pub fn partitions(mut self, partitions: u32) -> Self {
        self.cfg.partitions = partitions;
        self
    }

    /// Sets the replication factor `R`.
    pub fn replication_factor(mut self, r: u16) -> Self {
        self.cfg.replication_factor = r;
        self
    }

    /// Sets the number of keys per partition.
    pub fn keys_per_partition(mut self, keys: u64) -> Self {
        self.cfg.keys_per_partition = keys;
        self
    }

    /// Sets the written value payload size in bytes.
    pub fn value_size(mut self, bytes: usize) -> Self {
        self.cfg.value_size = bytes;
        self
    }

    /// Sets the background protocol periods.
    pub fn intervals(mut self, intervals: Intervals) -> Self {
        self.cfg.intervals = intervals;
        self
    }

    /// Sets the protocol variant.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.cfg.mode = mode;
        self
    }

    /// Sets the maximum injected physical clock skew (microseconds).
    pub fn max_clock_skew_micros(mut self, micros: u64) -> Self {
        self.cfg.max_clock_skew_micros = micros;
        self
    }

    /// Sets the background-traffic coalescing policy.
    pub fn batch(mut self, batch: BatchConfig) -> Self {
        self.cfg.batch = batch;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any invariant is violated (e.g.
    /// `R > M`, zero partitions, zero intervals).
    pub fn build(self) -> Result<ClusterConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

impl Default for ClusterConfigBuilder {
    fn default() -> Self {
        ClusterConfigBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_deployment() {
        let cfg = ClusterConfig::default();
        assert_eq!(cfg.dcs, 5);
        assert_eq!(cfg.partitions, 45);
        assert_eq!(cfg.replication_factor, 2);
        assert_eq!(cfg.servers_per_dc(), 18);
        assert_eq!(cfg.total_servers(), 90);
        assert_eq!(cfg.value_size, 8);
        assert_eq!(cfg.mode, Mode::Paris);
    }

    #[test]
    fn builder_overrides_fields() {
        let cfg = ClusterConfig::builder()
            .dcs(3)
            .partitions(9)
            .replication_factor(3)
            .keys_per_partition(10)
            .value_size(64)
            .mode(Mode::Bpr)
            .max_clock_skew_micros(0)
            .build()
            .unwrap();
        assert_eq!(cfg.servers_per_dc(), 9);
        assert_eq!(cfg.total_keys(), 90);
        assert_eq!(cfg.mode, Mode::Bpr);
        assert_eq!(cfg.max_clock_skew_micros, 0);
    }

    #[test]
    fn rejects_replication_factor_above_dcs() {
        let err = ClusterConfig::builder()
            .dcs(2)
            .replication_factor(3)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("replication factor"));
    }

    #[test]
    fn rejects_zero_dimensions() {
        assert!(ClusterConfig::builder().dcs(0).build().is_err());
        assert!(ClusterConfig::builder().partitions(0).build().is_err());
        assert!(ClusterConfig::builder()
            .replication_factor(0)
            .build()
            .is_err());
        assert!(ClusterConfig::builder()
            .keys_per_partition(0)
            .build()
            .is_err());
    }

    #[test]
    fn rejects_zero_intervals() {
        let bad = Intervals {
            replication_micros: 0,
            ..Intervals::default()
        };
        assert!(ClusterConfig::builder().intervals(bad).build().is_err());
    }

    #[test]
    fn intervals_default_to_paper_values() {
        let iv = Intervals::default();
        assert_eq!(iv.replication_micros, 5_000);
        assert_eq!(iv.gst_micros, 5_000);
        assert_eq!(iv.ust_micros, 5_000);
    }

    #[test]
    fn batch_config_default_is_disabled() {
        let b = BatchConfig::default();
        assert!(!b.is_enabled());
        assert!(!BatchConfig::DISABLED.is_enabled());
        assert!(BatchConfig {
            max_batch: 2,
            flush_interval_micros: 1_000,
        }
        .is_enabled());
    }

    #[test]
    fn rejects_enabled_batching_without_flush_interval() {
        let bad = BatchConfig {
            max_batch: 8,
            flush_interval_micros: 0,
        };
        assert!(ClusterConfig::builder().batch(bad).build().is_err());
        let good = BatchConfig {
            max_batch: 8,
            flush_interval_micros: 10_000,
        };
        let cfg = ClusterConfig::builder().batch(good).build().unwrap();
        assert_eq!(cfg.batch, good);
    }

    #[test]
    fn rejects_flush_interval_at_or_above_gc_period() {
        let bad = BatchConfig {
            max_batch: 8,
            flush_interval_micros: Intervals::default().gc_micros,
        };
        assert!(ClusterConfig::builder().batch(bad).build().is_err());
    }

    #[test]
    fn mode_display() {
        assert_eq!(Mode::Paris.to_string(), "PaRiS");
        assert_eq!(Mode::Bpr.to_string(), "BPR");
    }
}
