//! Cluster configuration shared by every substrate and the protocol core.

use crate::error::ConfigError;

/// Protocol variant to run.
///
/// The paper evaluates PaRiS against **BPR** (Blocking Partial Replication,
/// §V): an identical system except that transaction snapshots are fresh
/// (coordinator clock) and reads block until the serving partition has
/// installed the snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// PaRiS: non-blocking reads from the UST-stable snapshot plus the
    /// client-side write cache.
    #[default]
    Paris,
    /// BPR: fresh snapshots, blocking reads (the paper's baseline).
    Bpr,
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::Paris => write!(f, "PaRiS"),
            Mode::Bpr => write!(f, "BPR"),
        }
    }
}

/// Wire encoding version a deployment runs.
///
/// * **v1**: fixed-width little-endian fields — every timestamp, id,
///   length and count costs its full 2/4/8 bytes. Kept bit-for-bit
///   stable for interop with older peers.
/// * **v2** (default): LEB128 varints for lengths, counts, sequence
///   numbers, keys and ids, and trimmed timestamps (physical and logical
///   parts encoded separately as varints), cutting background-traffic
///   frames by well over a third at typical magnitudes.
///
/// Peers negotiate the highest version both sides support in the socket
/// connection preamble; a v1-only peer and a v2 peer settle on v1, and a
/// peer advertising an unknown version is refused before any frame is
/// parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WireFormat {
    /// Fixed-width little-endian codec (the original encoding).
    V1,
    /// Varint codec with trimmed timestamps.
    #[default]
    V2,
}

impl WireFormat {
    /// The preamble version number this encoding advertises.
    pub const fn version(self) -> u16 {
        match self {
            WireFormat::V1 => 1,
            WireFormat::V2 => 2,
        }
    }

    /// The encoding for a preamble version number, if supported.
    pub const fn from_version(v: u16) -> Option<WireFormat> {
        match v {
            1 => Some(WireFormat::V1),
            2 => Some(WireFormat::V2),
            _ => None,
        }
    }
}

impl std::fmt::Display for WireFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireFormat::V1 => write!(f, "v1"),
            WireFormat::V2 => write!(f, "v2"),
        }
    }
}

/// Periods of the background protocols, in simulated/real microseconds.
///
/// The paper runs all stabilization protocols every 5 ms (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Intervals {
    /// ∆R: period of the apply/replicate tick (Alg. 4 line 5).
    pub replication_micros: u64,
    /// ∆G: period of the intra-DC GST aggregation (Alg. 4 line 34).
    pub gst_micros: u64,
    /// ∆U: period of the UST computation at DC roots (Alg. 4 line 36).
    pub ust_micros: u64,
    /// Period of the garbage-collection aggregation (§IV-B).
    pub gc_micros: u64,
}

impl Default for Intervals {
    /// Paper defaults: 5 ms stabilization everywhere; GC every second.
    fn default() -> Self {
        Intervals {
            replication_micros: 5_000,
            gst_micros: 5_000,
            ust_micros: 5_000,
            gc_micros: 1_000_000,
        }
    }
}

/// How a coalescing link decides *when* to flush its queued frames.
///
/// The size trigger ([`BatchConfig::max_batch`]) is policy-independent;
/// this chooses the deadline trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Every link flushes a constant interval after its first queued
    /// frame — the original coalescing behaviour.
    Fixed {
        /// Flush a link once its oldest queued frame is this old, in
        /// microseconds.
        interval_micros: u64,
    },
    /// Load-responsive deadlines: each link tracks the inter-arrival gap
    /// of its background frames and flushes after about two gaps —
    /// shorter when the link is hot (frames arrive faster than a fixed
    /// interval would drain them, so a short window still folds plenty),
    /// stretched toward `max_flush_micros` when the link is quiet. The
    /// deadline always stays within `[min_flush_micros,
    /// max_flush_micros]`, so `max_flush_micros` is the staleness bound
    /// the configuration promises.
    Adaptive {
        /// Floor of the per-link flush deadline, in microseconds.
        min_flush_micros: u64,
        /// Ceiling of the per-link flush deadline, in microseconds —
        /// the most extra staleness any background frame can be charged
        /// per hop.
        max_flush_micros: u64,
    },
}

impl FlushPolicy {
    /// The flush deadline for a link whose observed mean frame
    /// inter-arrival gap is `gap_micros` (`None` until a link has seen
    /// two frames; an unknown gap is treated as quiet).
    ///
    /// Monotone: a higher arrival rate (smaller gap) never yields a
    /// longer deadline, and adaptive deadlines always land inside
    /// `[min_flush_micros, max_flush_micros]`.
    pub fn interval_micros(&self, gap_micros: Option<u64>) -> u64 {
        /// Target fold factor: wait about this many inter-arrival gaps so
        /// a flush folds ≥ 2 frames without taxing latency further.
        const ADAPTIVE_FOLD: u64 = 2;
        match *self {
            FlushPolicy::Fixed { interval_micros } => interval_micros,
            FlushPolicy::Adaptive {
                min_flush_micros,
                max_flush_micros,
            } => {
                // Config validation rejects inverted bounds, but this is
                // a pure function on a public type: normalize instead of
                // letting `clamp` panic on an unvalidated literal.
                let lo = min_flush_micros.min(max_flush_micros);
                match gap_micros {
                    None => max_flush_micros,
                    Some(gap) => gap
                        .saturating_mul(ADAPTIVE_FOLD)
                        .clamp(lo, max_flush_micros),
                }
            }
        }
    }

    /// The longest deadline this policy can produce — the per-hop
    /// staleness bound.
    pub fn max_interval_micros(&self) -> u64 {
        match *self {
            FlushPolicy::Fixed { interval_micros } => interval_micros,
            FlushPolicy::Adaptive {
                max_flush_micros, ..
            } => max_flush_micros,
        }
    }
}

/// Coalescing policy for background (replication + stabilization) traffic.
///
/// When enabled, the network substrate queues background frames per link
/// and folds them into one `ReplicateBatch` / `GossipDigest` wire message,
/// flushing a link when [`BatchConfig::max_batch`] frames have accumulated
/// or the oldest queued frame reaches the [`FlushPolicy`] deadline.
/// Foreground transaction traffic is never batched (it is
/// latency-critical).
///
/// **On by default** (adaptive): the fold is exact — replication frames
/// concatenate in commit-time order keeping the newest watermark, every
/// gossip component is monotonic — so batching changes *when* background
/// messages travel, never what replicas agree on. Opt out with
/// [`BatchConfig::DISABLED`] (or `ClusterBuilder::no_batching()` through
/// the facade).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Flush a link once this many logical frames are queued on it.
    /// `0` or `1` disables batching (every frame ships immediately).
    pub max_batch: usize,
    /// When a link flushes queued frames that did not hit the size
    /// trigger.
    pub flush: FlushPolicy,
}

impl BatchConfig {
    /// Batching off: every envelope ships as its own wire message.
    pub const DISABLED: BatchConfig = BatchConfig {
        max_batch: 1,
        flush: FlushPolicy::Fixed { interval_micros: 0 },
    };

    /// The default frame count of the size trigger.
    pub const DEFAULT_MAX_BATCH: usize = 64;

    /// Fixed-deadline batching (the original behaviour).
    pub fn fixed(max_batch: usize, interval_micros: u64) -> Self {
        BatchConfig {
            max_batch,
            flush: FlushPolicy::Fixed { interval_micros },
        }
    }

    /// Load-responsive batching with deadlines in
    /// `[min_flush_micros, max_flush_micros]`.
    pub fn adaptive(max_batch: usize, min_flush_micros: u64, max_flush_micros: u64) -> Self {
        BatchConfig {
            max_batch,
            flush: FlushPolicy::Adaptive {
                min_flush_micros,
                max_flush_micros,
            },
        }
    }

    /// The default adaptive policy for a deployment with replication
    /// period `replication_micros`: deadlines between an eighth of a
    /// tick and six ticks. The controller itself settles near two
    /// inter-arrival gaps (≈ two ticks on a steadily ticking link), so
    /// the ceiling's headroom exists for the *end-to-end* staleness
    /// promise: an update's visibility pipeline crosses several
    /// coalesced hops (replicate, tree report, root exchange, UST
    /// broadcast), and `fig4` gates the total p90 visibility inflation
    /// against this single ceiling.
    pub fn default_adaptive(replication_micros: u64) -> Self {
        BatchConfig::adaptive(
            Self::DEFAULT_MAX_BATCH,
            (replication_micros / 8).max(50),
            6 * replication_micros,
        )
    }

    /// The default adaptive policy *derived from a full interval set*:
    /// [`BatchConfig::default_adaptive`] bounds, additionally capped to
    /// half the GC period so an untouched default can never invalidate
    /// interval combinations that were legal before batching-by-default
    /// (a user who never asked for batching must never see a batching
    /// validation error). Both config builders resolve an unset batch
    /// policy through here at build time. Degenerate GC periods (≤ 1 µs
    /// — nothing can flush below them) disable batching instead.
    pub fn default_adaptive_for(intervals: &Intervals) -> Self {
        if intervals.gc_micros <= 1 {
            return BatchConfig::DISABLED;
        }
        let ceiling = (6 * intervals.replication_micros)
            .min(intervals.gc_micros / 2)
            .max(1);
        let floor = (intervals.replication_micros / 8).max(50).min(ceiling);
        BatchConfig::adaptive(Self::DEFAULT_MAX_BATCH, floor, ceiling)
    }

    /// Whether this configuration actually coalesces anything.
    pub fn is_enabled(&self) -> bool {
        self.max_batch > 1
    }

    /// The most extra staleness any background frame can be charged per
    /// hop — the flush-deadline ceiling.
    pub fn max_flush_micros(&self) -> u64 {
        self.flush.max_interval_micros()
    }
}

impl Default for BatchConfig {
    /// Batching is on by default, adaptive, sized for the paper's 5 ms
    /// replication tick (the builders re-derive the bounds when the
    /// intervals change).
    fn default() -> Self {
        BatchConfig::default_adaptive(Intervals::default().replication_micros)
    }
}

/// Static description of a PaRiS deployment.
///
/// `M` DCs, `N` partitions, replication factor `R`: each partition is
/// replicated at `R` DCs, so each DC hosts `N·R/M` servers when the
/// placement is balanced (the paper's deployments always are: e.g. 45
/// partitions × R=2 over 5 DCs = 18 servers/DC).
///
/// Use [`ClusterConfig::builder`] to construct one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of data centers `M`.
    pub dcs: u16,
    /// Number of partitions `N`.
    pub partitions: u32,
    /// Replication factor `R` (paper default: 2).
    pub replication_factor: u16,
    /// Keys per partition in the workload keyspace.
    pub keys_per_partition: u64,
    /// Payload size of written values, in bytes (paper: 8).
    pub value_size: usize,
    /// Background protocol periods.
    pub intervals: Intervals,
    /// Protocol variant.
    pub mode: Mode,
    /// Maximum absolute physical-clock skew injected per server, in
    /// microseconds (NTP-like; 0 disables skew).
    pub max_clock_skew_micros: u64,
    /// Background-traffic coalescing policy (adaptive, on by default).
    pub batch: BatchConfig,
    /// Wire encoding the deployment's network substrates use (v2 varint
    /// codec by default; v1 for interop with fixed-width peers).
    pub wire: WireFormat,
}

impl ClusterConfig {
    /// Starts building a configuration with the paper's defaults.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder::new()
    }

    /// Number of servers each DC hosts under balanced placement.
    ///
    /// Exact when `N·R` is divisible by `M` (all paper deployments);
    /// otherwise DCs differ by at most one server and this returns the
    /// rounded-down count.
    pub fn servers_per_dc(&self) -> u32 {
        self.partitions * u32::from(self.replication_factor) / u32::from(self.dcs)
    }

    /// Total number of servers (partition replicas) in the system.
    pub fn total_servers(&self) -> u32 {
        self.partitions * u32::from(self.replication_factor)
    }

    /// Total number of keys in the keyspace.
    pub fn total_keys(&self) -> u64 {
        u64::from(self.partitions) * self.keys_per_partition
    }

    /// Validates the invariants the protocol relies on.
    fn validate(&self) -> Result<(), ConfigError> {
        if self.dcs == 0 {
            return Err(ConfigError::new("at least one DC is required"));
        }
        if self.partitions == 0 {
            return Err(ConfigError::new("at least one partition is required"));
        }
        if self.replication_factor == 0 {
            return Err(ConfigError::new("replication factor must be at least 1"));
        }
        if self.replication_factor > self.dcs {
            return Err(ConfigError::new(
                "replication factor cannot exceed the number of DCs",
            ));
        }
        if self.keys_per_partition == 0 {
            return Err(ConfigError::new("keys per partition must be at least 1"));
        }
        if self.intervals.replication_micros == 0
            || self.intervals.gst_micros == 0
            || self.intervals.ust_micros == 0
            || self.intervals.gc_micros == 0
        {
            return Err(ConfigError::new("protocol intervals must be non-zero"));
        }
        if self.batch.is_enabled() {
            match self.batch.flush {
                FlushPolicy::Fixed { interval_micros } => {
                    if interval_micros == 0 {
                        return Err(ConfigError::new(
                            "batching needs a non-zero flush interval (unbounded queues otherwise)",
                        ));
                    }
                }
                FlushPolicy::Adaptive {
                    min_flush_micros,
                    max_flush_micros,
                } => {
                    if min_flush_micros == 0 {
                        return Err(ConfigError::new(
                            "adaptive batching needs a non-zero minimum flush interval \
                             (unbounded queues otherwise)",
                        ));
                    }
                    if min_flush_micros > max_flush_micros {
                        return Err(ConfigError::new(
                            "adaptive flush bounds are inverted (min above max)",
                        ));
                    }
                }
            }
            if self.batch.max_flush_micros() >= self.intervals.gc_micros {
                return Err(ConfigError::new(
                    "batch flush deadline ceiling must stay below the GC period",
                ));
            }
        }
        Ok(())
    }
}

impl Default for ClusterConfig {
    /// The paper's default deployment: 5 DCs, 45 partitions, R = 2
    /// (18 servers per DC), 8-byte items.
    fn default() -> Self {
        ClusterConfig::builder()
            .build()
            .expect("defaults are valid")
    }
}

/// Builder for [`ClusterConfig`].
///
/// ```
/// use paris_types::{ClusterConfig, Mode};
///
/// let cfg = ClusterConfig::builder()
///     .dcs(3)
///     .partitions(9)
///     .replication_factor(2)
///     .mode(Mode::Bpr)
///     .build()?;
/// assert_eq!(cfg.servers_per_dc(), 6);
/// # Ok::<(), paris_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClusterConfigBuilder {
    cfg: ClusterConfig,
    /// Whether [`Self::batch`] was called: an untouched batch policy is
    /// re-derived from the final intervals at build time, so setting
    /// slow ticks or a short GC period never invalidates (or silently
    /// neuters) the batching default.
    batch_set: bool,
}

impl ClusterConfigBuilder {
    /// Creates a builder seeded with the paper's default deployment.
    pub fn new() -> Self {
        ClusterConfigBuilder {
            cfg: ClusterConfig {
                dcs: 5,
                partitions: 45,
                replication_factor: 2,
                keys_per_partition: 100_000,
                value_size: 8,
                intervals: Intervals::default(),
                mode: Mode::Paris,
                max_clock_skew_micros: 500,
                batch: BatchConfig::default(),
                wire: WireFormat::default(),
            },
            batch_set: false,
        }
    }

    /// Sets the number of DCs `M`.
    pub fn dcs(mut self, dcs: u16) -> Self {
        self.cfg.dcs = dcs;
        self
    }

    /// Sets the number of partitions `N`.
    pub fn partitions(mut self, partitions: u32) -> Self {
        self.cfg.partitions = partitions;
        self
    }

    /// Sets the replication factor `R`.
    pub fn replication_factor(mut self, r: u16) -> Self {
        self.cfg.replication_factor = r;
        self
    }

    /// Sets the number of keys per partition.
    pub fn keys_per_partition(mut self, keys: u64) -> Self {
        self.cfg.keys_per_partition = keys;
        self
    }

    /// Sets the written value payload size in bytes.
    pub fn value_size(mut self, bytes: usize) -> Self {
        self.cfg.value_size = bytes;
        self
    }

    /// Sets the background protocol periods.
    pub fn intervals(mut self, intervals: Intervals) -> Self {
        self.cfg.intervals = intervals;
        self
    }

    /// Sets the protocol variant.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.cfg.mode = mode;
        self
    }

    /// Sets the maximum injected physical clock skew (microseconds).
    pub fn max_clock_skew_micros(mut self, micros: u64) -> Self {
        self.cfg.max_clock_skew_micros = micros;
        self
    }

    /// Sets the background-traffic coalescing policy explicitly
    /// (explicit policies are validated strictly; left unset, the
    /// default adaptive policy is derived from the final intervals at
    /// build time).
    pub fn batch(mut self, batch: BatchConfig) -> Self {
        self.cfg.batch = batch;
        self.batch_set = true;
        self
    }

    /// Sets the wire encoding version (v2 varint codec by default).
    pub fn wire(mut self, wire: WireFormat) -> Self {
        self.cfg.wire = wire;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any invariant is violated (e.g.
    /// `R > M`, zero partitions, zero intervals).
    pub fn build(mut self) -> Result<ClusterConfig, ConfigError> {
        if !self.batch_set {
            self.cfg.batch = BatchConfig::default_adaptive_for(&self.cfg.intervals);
        }
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

impl Default for ClusterConfigBuilder {
    fn default() -> Self {
        ClusterConfigBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_deployment() {
        let cfg = ClusterConfig::default();
        assert_eq!(cfg.dcs, 5);
        assert_eq!(cfg.partitions, 45);
        assert_eq!(cfg.replication_factor, 2);
        assert_eq!(cfg.servers_per_dc(), 18);
        assert_eq!(cfg.total_servers(), 90);
        assert_eq!(cfg.value_size, 8);
        assert_eq!(cfg.mode, Mode::Paris);
    }

    #[test]
    fn builder_overrides_fields() {
        let cfg = ClusterConfig::builder()
            .dcs(3)
            .partitions(9)
            .replication_factor(3)
            .keys_per_partition(10)
            .value_size(64)
            .mode(Mode::Bpr)
            .max_clock_skew_micros(0)
            .build()
            .unwrap();
        assert_eq!(cfg.servers_per_dc(), 9);
        assert_eq!(cfg.total_keys(), 90);
        assert_eq!(cfg.mode, Mode::Bpr);
        assert_eq!(cfg.max_clock_skew_micros, 0);
    }

    #[test]
    fn rejects_replication_factor_above_dcs() {
        let err = ClusterConfig::builder()
            .dcs(2)
            .replication_factor(3)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("replication factor"));
    }

    #[test]
    fn rejects_zero_dimensions() {
        assert!(ClusterConfig::builder().dcs(0).build().is_err());
        assert!(ClusterConfig::builder().partitions(0).build().is_err());
        assert!(ClusterConfig::builder()
            .replication_factor(0)
            .build()
            .is_err());
        assert!(ClusterConfig::builder()
            .keys_per_partition(0)
            .build()
            .is_err());
    }

    #[test]
    fn rejects_zero_intervals() {
        let bad = Intervals {
            replication_micros: 0,
            ..Intervals::default()
        };
        assert!(ClusterConfig::builder().intervals(bad).build().is_err());
    }

    #[test]
    fn intervals_default_to_paper_values() {
        let iv = Intervals::default();
        assert_eq!(iv.replication_micros, 5_000);
        assert_eq!(iv.gst_micros, 5_000);
        assert_eq!(iv.ust_micros, 5_000);
    }

    #[test]
    fn batch_config_default_is_adaptive_and_enabled() {
        let b = BatchConfig::default();
        assert!(b.is_enabled(), "batching is on by default");
        assert_eq!(b.max_batch, BatchConfig::DEFAULT_MAX_BATCH);
        let d = Intervals::default().replication_micros;
        assert_eq!(
            b.flush,
            FlushPolicy::Adaptive {
                min_flush_micros: d / 8,
                max_flush_micros: 6 * d,
            }
        );
        assert_eq!(b.max_flush_micros(), 6 * d);
        assert!(!BatchConfig::DISABLED.is_enabled());
        assert!(BatchConfig::fixed(2, 1_000).is_enabled());
    }

    #[test]
    fn rejects_enabled_batching_without_flush_interval() {
        let bad = BatchConfig::fixed(8, 0);
        assert!(ClusterConfig::builder().batch(bad).build().is_err());
        let good = BatchConfig::fixed(8, 10_000);
        let cfg = ClusterConfig::builder().batch(good).build().unwrap();
        assert_eq!(cfg.batch, good);
    }

    #[test]
    fn rejects_flush_interval_at_or_above_gc_period() {
        let gc = Intervals::default().gc_micros;
        assert!(ClusterConfig::builder()
            .batch(BatchConfig::fixed(8, gc))
            .build()
            .is_err());
        // The adaptive ceiling is held to the same rule.
        assert!(ClusterConfig::builder()
            .batch(BatchConfig::adaptive(8, 1_000, gc))
            .build()
            .is_err());
    }

    #[test]
    fn rejects_bad_adaptive_bounds() {
        // A zero floor would mean unbounded queue churn decisions.
        assert!(ClusterConfig::builder()
            .batch(BatchConfig::adaptive(8, 0, 10_000))
            .build()
            .is_err());
        // Inverted bounds.
        assert!(ClusterConfig::builder()
            .batch(BatchConfig::adaptive(8, 10_000, 1_000))
            .build()
            .is_err());
        // A disabled config is never validated against flush rules.
        assert!(ClusterConfig::builder()
            .batch(BatchConfig::DISABLED)
            .build()
            .is_ok());
    }

    #[test]
    fn unset_batch_policy_derives_from_the_final_intervals() {
        // Short GC period: legal before batching-by-default, must stay
        // legal — the derived ceiling caps at half the GC period.
        let cfg = ClusterConfig::builder()
            .intervals(Intervals {
                replication_micros: 5_000,
                gst_micros: 5_000,
                ust_micros: 5_000,
                gc_micros: 25_000,
            })
            .build()
            .expect("short GC must not invalidate the untouched default");
        assert!(cfg.batch.is_enabled());
        assert_eq!(cfg.batch.max_flush_micros(), 12_500);

        // Slow ticks: the derived bounds must track them (a stale 30 ms
        // ceiling would sit below one tick and fold nothing).
        let cfg = ClusterConfig::builder()
            .intervals(Intervals {
                replication_micros: 50_000,
                gst_micros: 50_000,
                ust_micros: 50_000,
                gc_micros: 1_000_000,
            })
            .build()
            .unwrap();
        assert_eq!(
            cfg.batch.flush,
            FlushPolicy::Adaptive {
                min_flush_micros: 6_250,
                max_flush_micros: 300_000,
            }
        );

        // An explicit policy is never overridden by the derivation.
        let explicit = BatchConfig::fixed(8, 10_000);
        let cfg = ClusterConfig::builder()
            .batch(explicit)
            .intervals(Intervals {
                replication_micros: 50_000,
                ..Intervals::default()
            })
            .build()
            .unwrap();
        assert_eq!(cfg.batch, explicit);

        // Degenerate GC (1 µs): nothing can legally flush below it, so
        // the derivation turns batching off rather than erroring.
        let cfg = ClusterConfig::builder()
            .intervals(Intervals {
                replication_micros: 5_000,
                gst_micros: 5_000,
                ust_micros: 5_000,
                gc_micros: 1,
            })
            .build()
            .unwrap();
        assert!(!cfg.batch.is_enabled());
    }

    #[test]
    fn adaptive_deadline_tracks_the_gap_within_bounds() {
        let p = FlushPolicy::Adaptive {
            min_flush_micros: 500,
            max_flush_micros: 10_000,
        };
        // Unknown gap = quiet = ceiling.
        assert_eq!(p.interval_micros(None), 10_000);
        // Hot link: clamped to the floor.
        assert_eq!(p.interval_micros(Some(100)), 500);
        // Mid-range: about two gaps.
        assert_eq!(p.interval_micros(Some(2_000)), 4_000);
        // Quiet link: clamped to the ceiling.
        assert_eq!(p.interval_micros(Some(60_000)), 10_000);
        // Fixed policy ignores the gap entirely.
        let f = FlushPolicy::Fixed {
            interval_micros: 7_000,
        };
        assert_eq!(f.interval_micros(None), 7_000);
        assert_eq!(f.interval_micros(Some(1)), 7_000);
        assert_eq!(f.max_interval_micros(), 7_000);
        // Inverted bounds never reach a validated config, but the pure
        // function must not panic on an unvalidated literal.
        let inverted = FlushPolicy::Adaptive {
            min_flush_micros: 10_000,
            max_flush_micros: 1_000,
        };
        assert_eq!(inverted.interval_micros(Some(5_000)), 1_000);
        assert_eq!(inverted.interval_micros(None), 1_000);
    }

    #[test]
    fn mode_display() {
        assert_eq!(Mode::Paris.to_string(), "PaRiS");
        assert_eq!(Mode::Bpr.to_string(), "BPR");
    }

    #[test]
    fn wire_format_defaults_to_v2_and_maps_versions() {
        assert_eq!(ClusterConfig::default().wire, WireFormat::V2);
        let cfg = ClusterConfig::builder()
            .wire(WireFormat::V1)
            .build()
            .unwrap();
        assert_eq!(cfg.wire, WireFormat::V1);
        assert_eq!(WireFormat::V1.version(), 1);
        assert_eq!(WireFormat::V2.version(), 2);
        assert_eq!(WireFormat::from_version(1), Some(WireFormat::V1));
        assert_eq!(WireFormat::from_version(2), Some(WireFormat::V2));
        assert_eq!(WireFormat::from_version(0), None);
        assert_eq!(WireFormat::from_version(3), None);
        assert_eq!(WireFormat::V1.to_string(), "v1");
        assert_eq!(WireFormat::V2.to_string(), "v2");
    }
}
