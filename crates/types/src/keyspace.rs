//! Keys and values of the data store.

use std::fmt;

/// A key in the distributed key-value store.
///
/// Workload keys are dense integers (as in YCSB); the hash that maps a key
/// to its partition lives in `paris-core::topology` so that all routing
/// decisions share one implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Key(pub u64);

impl Key {
    /// The raw key value.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl From<u64> for Key {
    fn from(v: u64) -> Self {
        Key(v)
    }
}

/// A value stored under a key.
///
/// The paper's evaluation uses small 8-byte items (§V-A), so values are
/// plain byte vectors; the payload size is workload-configurable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Value(pub Vec<u8>);

impl Value {
    /// Creates a value of `len` bytes filled with a marker byte derived from
    /// `seed` — cheap to generate and easy to spot in assertions.
    pub fn filled(len: usize, seed: u64) -> Self {
        Value(vec![(seed % 251) as u8 + 1; len])
    }

    /// Byte length of the value.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the value is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The raw bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v[{}B]", self.0.len())
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value(v)
    }
}

impl From<&[u8]> for Value {
    fn from(v: &[u8]) -> Self {
        Value(v.to_vec())
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value(v.as_bytes().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip_and_display() {
        let k = Key::from(42u64);
        assert_eq!(k.as_u64(), 42);
        assert_eq!(k.to_string(), "k42");
    }

    #[test]
    fn value_filled_has_requested_len_and_nonzero_bytes() {
        let v = Value::filled(8, 123);
        assert_eq!(v.len(), 8);
        assert!(!v.is_empty());
        assert!(v.as_bytes().iter().all(|&b| b != 0));
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from("hi").as_bytes(), b"hi");
        assert_eq!(Value::from(vec![1, 2]).len(), 2);
        assert_eq!(Value::from(&b"xyz"[..]).len(), 3);
    }

    #[test]
    fn empty_value_display_is_nonempty() {
        assert_eq!(Value::default().to_string(), "v[0B]");
        assert!(Value::default().is_empty());
    }
}
