//! Scalar hybrid timestamps.

use std::fmt;
use std::ops::{Add, Sub};

/// A scalar hybrid logical-physical timestamp.
///
/// PaRiS tracks dependencies and defines transactional snapshots with a
/// *single* timestamp (paper §I, §III-B). We follow the standard HLC
/// encoding (Kulkarni et al., OPODIS'14): the upper 48 bits hold physical
/// time in microseconds, the lower 16 bits hold a logical counter used to
/// preserve causality when the physical component ties.
///
/// The packed representation makes comparison a single `u64` compare and the
/// wire size exactly 8 bytes, which is the "1 ts" metadata cost in the
/// paper's Table I.
///
/// # Example
///
/// ```
/// use paris_types::Timestamp;
///
/// let a = Timestamp::from_parts(500, 0);
/// let b = a.with_logical(1);
/// assert!(a < b);
/// assert_eq!(b.physical_micros(), 500);
/// assert_eq!(b.logical(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

/// Number of bits reserved for the logical counter.
const LOGICAL_BITS: u32 = 16;
/// Mask extracting the logical counter.
const LOGICAL_MASK: u64 = (1 << LOGICAL_BITS) - 1;

impl Timestamp {
    /// The zero timestamp: before everything.
    pub const ZERO: Timestamp = Timestamp(0);

    /// The maximum representable timestamp: after everything.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Builds a timestamp from physical microseconds and a logical counter.
    ///
    /// # Panics
    ///
    /// Panics if `physical_micros` does not fit in 48 bits (≈ 8.9 years of
    /// microseconds) — unreachable in any simulation or realistic run.
    #[inline]
    pub fn from_parts(physical_micros: u64, logical: u16) -> Self {
        assert!(
            physical_micros < (1 << (64 - LOGICAL_BITS)),
            "physical component out of range"
        );
        Timestamp((physical_micros << LOGICAL_BITS) | u64::from(logical))
    }

    /// Builds a timestamp with physical component only (logical = 0).
    #[inline]
    pub fn from_physical_micros(micros: u64) -> Self {
        Timestamp::from_parts(micros, 0)
    }

    /// The raw packed value.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuilds a timestamp from a raw packed value (e.g. off the wire).
    #[inline]
    pub fn from_u64(raw: u64) -> Self {
        Timestamp(raw)
    }

    /// Physical component in microseconds.
    #[inline]
    pub fn physical_micros(self) -> u64 {
        self.0 >> LOGICAL_BITS
    }

    /// Logical counter component.
    #[inline]
    pub fn logical(self) -> u16 {
        (self.0 & LOGICAL_MASK) as u16
    }

    /// Returns this timestamp with the logical counter replaced.
    #[inline]
    pub fn with_logical(self, logical: u16) -> Self {
        Timestamp((self.0 & !LOGICAL_MASK) | u64::from(logical))
    }

    /// The next representable timestamp (logical + 1, carrying into the
    /// physical component on overflow).
    ///
    /// Used by the HLC rule `HLC ← max(Clock, ht + 1, HLC + 1)`
    /// (Alg. 3 line 10).
    #[inline]
    pub fn tick(self) -> Self {
        Timestamp(self.0.checked_add(1).expect("timestamp overflow"))
    }

    /// The previous representable timestamp, saturating at zero.
    ///
    /// Used for the `min(prepared) − 1` version-clock bound (Alg. 4 line 6).
    #[inline]
    pub fn pred(self) -> Self {
        Timestamp(self.0.saturating_sub(1))
    }

    /// Difference of the physical components, in microseconds, saturating
    /// at zero. Used to measure staleness and visibility latency.
    #[inline]
    pub fn physical_delta_micros(self, earlier: Timestamp) -> u64 {
        self.physical_micros()
            .saturating_sub(earlier.physical_micros())
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ts({}.{})", self.physical_micros(), self.logical())
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us+{}", self.physical_micros(), self.logical())
    }
}

impl Add<u64> for Timestamp {
    type Output = Timestamp;

    /// Adds `micros` microseconds to the physical component, clearing the
    /// logical counter. Handy for tests and timer arithmetic.
    fn add(self, micros: u64) -> Timestamp {
        Timestamp::from_physical_micros(self.physical_micros() + micros)
    }
}

impl Sub for Timestamp {
    type Output = u64;

    /// Physical difference in microseconds (saturating).
    fn sub(self, rhs: Timestamp) -> u64 {
        self.physical_delta_micros(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_is_minimal() {
        assert_eq!(Timestamp::ZERO.physical_micros(), 0);
        assert_eq!(Timestamp::ZERO.logical(), 0);
        assert!(Timestamp::ZERO < Timestamp::from_parts(0, 1));
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let ts = Timestamp::from_parts(123_456_789, 42);
        assert_eq!(ts.physical_micros(), 123_456_789);
        assert_eq!(ts.logical(), 42);
        assert_eq!(Timestamp::from_u64(ts.as_u64()), ts);
    }

    #[test]
    fn ordering_is_physical_then_logical() {
        let a = Timestamp::from_parts(10, 65_535);
        let b = Timestamp::from_parts(11, 0);
        assert!(a < b);
        let c = Timestamp::from_parts(10, 1);
        let d = Timestamp::from_parts(10, 2);
        assert!(c < d);
    }

    #[test]
    fn tick_carries_into_physical() {
        let a = Timestamp::from_parts(10, u16::MAX);
        let b = a.tick();
        assert_eq!(b.physical_micros(), 11);
        assert_eq!(b.logical(), 0);
    }

    #[test]
    fn pred_saturates() {
        assert_eq!(Timestamp::ZERO.pred(), Timestamp::ZERO);
        let a = Timestamp::from_parts(1, 0);
        assert_eq!(a.pred(), Timestamp::from_parts(0, u16::MAX));
    }

    #[test]
    fn with_logical_replaces_counter() {
        let a = Timestamp::from_parts(99, 7);
        assert_eq!(a.with_logical(0).logical(), 0);
        assert_eq!(a.with_logical(0).physical_micros(), 99);
    }

    #[test]
    fn add_and_sub_work_on_physical_micros() {
        let a = Timestamp::from_physical_micros(1_000);
        let b = a + 500;
        assert_eq!(b.physical_micros(), 1_500);
        assert_eq!(b - a, 500);
        assert_eq!(a - b, 0, "sub saturates");
    }

    #[test]
    #[should_panic(expected = "physical component out of range")]
    fn from_parts_rejects_oversized_physical() {
        let _ = Timestamp::from_parts(1 << 48, 0);
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let ts = Timestamp::from_parts(5, 2);
        assert_eq!(format!("{ts}"), "5us+2");
        assert_eq!(format!("{ts:?}"), "Ts(5.2)");
    }

    proptest! {
        #[test]
        fn prop_pack_roundtrip(phys in 0u64..(1 << 48), log in any::<u16>()) {
            let ts = Timestamp::from_parts(phys, log);
            prop_assert_eq!(ts.physical_micros(), phys);
            prop_assert_eq!(ts.logical(), log);
        }

        #[test]
        fn prop_order_matches_tuple_order(
            p1 in 0u64..(1 << 48), l1 in any::<u16>(),
            p2 in 0u64..(1 << 48), l2 in any::<u16>()
        ) {
            let a = Timestamp::from_parts(p1, l1);
            let b = Timestamp::from_parts(p2, l2);
            prop_assert_eq!(a.cmp(&b), (p1, l1).cmp(&(p2, l2)));
        }

        #[test]
        fn prop_tick_is_strictly_increasing(phys in 0u64..(1 << 47), log in any::<u16>()) {
            let ts = Timestamp::from_parts(phys, log);
            prop_assert!(ts.tick() > ts);
            prop_assert_eq!(ts.tick().pred(), ts);
        }
    }
}
