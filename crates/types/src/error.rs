//! Error types shared across the workspace.

use std::error::Error as StdError;
use std::fmt;

/// Error produced when building an invalid [`crate::ClusterConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: &'static str,
}

impl ConfigError {
    /// Creates a configuration error with a static description.
    pub fn new(message: &'static str) -> Self {
        ConfigError { message }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cluster configuration: {}", self.message)
    }
}

impl StdError for ConfigError {}

/// Top-level error type for operations on a PaRiS deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The configuration was invalid.
    Config(ConfigError),
    /// An operation referenced a transaction id unknown to the coordinator
    /// (e.g. already committed, or a bogus id).
    UnknownTransaction,
    /// An operation targeted a partition that no reachable DC replicates
    /// (paper §III-C: this is the partial-replication unavailability case).
    PartitionUnreachable,
    /// A client issued an operation outside of an open transaction.
    NoOpenTransaction,
    /// A client tried to start a transaction while one is already open
    /// (sessions are sequential: one outstanding operation at a time, §II-C).
    TransactionAlreadyOpen,
    /// Commit was invoked with an empty write set; the paper only invokes
    /// commit for update transactions (Alg. 1 line 26).
    EmptyWriteSet,
    /// A transport-level failure: an operation timed out or the substrate
    /// carrying it shut down before replying.
    Transport(&'static str),
    /// The selected backend does not support the requested operation.
    Unsupported(&'static str),
    /// A durable-storage failure: the WAL or checkpoint directory could
    /// not be opened, written, or recovered.
    Storage(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(e) => write!(f, "{e}"),
            Error::UnknownTransaction => write!(f, "unknown transaction id"),
            Error::PartitionUnreachable => {
                write!(f, "no reachable replica for the target partition")
            }
            Error::NoOpenTransaction => write!(f, "no transaction is open in this session"),
            Error::TransactionAlreadyOpen => {
                write!(f, "a transaction is already open in this session")
            }
            Error::EmptyWriteSet => write!(f, "commit requires a non-empty write set"),
            Error::Transport(what) => write!(f, "transport failure: {what}"),
            Error::Unsupported(what) => write!(f, "unsupported by this backend: {what}"),
            Error::Storage(what) => write!(f, "durable storage failure: {what}"),
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Error::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_error_display() {
        let e = ConfigError::new("boom");
        assert_eq!(e.to_string(), "invalid cluster configuration: boom");
    }

    #[test]
    fn error_display_is_lowercase_and_terse() {
        for e in [
            Error::UnknownTransaction,
            Error::PartitionUnreachable,
            Error::NoOpenTransaction,
            Error::TransactionAlreadyOpen,
            Error::EmptyWriteSet,
        ] {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_wraps_config_error_as_source() {
        let e: Error = ConfigError::new("bad").into();
        assert!(std::error::Error::source(&e).is_some());
        assert_eq!(e, Error::Config(ConfigError::new("bad")));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<Error>();
        assert_bounds::<ConfigError>();
    }
}
