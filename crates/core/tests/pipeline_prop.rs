//! Property tests of the split write path: driving the commit pipeline's
//! public halves (`stage_prepare`/`admit_prepared` for prepares,
//! `apply_replicated`/`note_remote_applied` for replication) under
//! arbitrary cross-source interleavings must leave a server in exactly
//! the state the monolithic `handle()` path produces — identical version
//! chains, version vector and UST progression.
//!
//! This is the determinism contract the threaded and socket runtimes'
//! write pools rely on: a pool may reorder work across sources (never
//! within one source — per-src FIFO), and nothing observable may depend
//! on which order it picked.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use paris_clock::SimClock;
use paris_core::{Mode, Server, ServerOptions, ServerTuning, Topology};
use paris_proto::{Envelope, Msg, ReplicatedTx};
use paris_types::{
    ClusterConfig, DcId, Key, PartitionId, ServerId, Timestamp, TxId, Value, WriteSetEntry,
};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// Distinct keys per case, all owned by partition 0.
const KEYS: usize = 6;

/// All three DCs replicate both partitions, so server (0, 0) has two peer
/// replicas (DCs 1 and 2) — two independent replication sources whose
/// batches may interleave arbitrarily.
fn topo() -> Arc<Topology> {
    Arc::new(Topology::new(
        ClusterConfig::builder()
            .dcs(3)
            .partitions(2)
            .replication_factor(3)
            .build()
            .unwrap(),
    ))
}

fn options(topo: &Arc<Topology>, clock: &SimClock) -> ServerOptions {
    ServerOptions {
        id: ServerId::new(DcId(0), PartitionId(0)),
        topology: Arc::clone(topo),
        clock: Box::new(clock.clone()),
        mode: Mode::Paris,
        record_events: false,
    }
}

/// One replication source's stream: per batch, per transaction, the
/// written (key index, value byte) pairs.
type StreamSpec = Vec<Vec<Vec<(usize, u8)>>>;

fn arb_stream() -> impl Strategy<Value = StreamSpec> {
    pvec(pvec(pvec((0usize..KEYS, any::<u8>()), 1..4), 1..3), 1..5)
}

/// A materialized replication batch: source, transactions (ascending
/// `ct`), sender watermark, coalesced-frame count.
#[derive(Clone)]
struct Batch {
    src: DcId,
    txs: Vec<ReplicatedTx>,
    watermark: Timestamp,
    frames: u32,
}

/// Assigns globally unique, per-source ascending commit timestamps to a
/// stream spec. `seq` is shared across sources so no two versions ever
/// collide on `(ct, tx)`.
fn make_stream(topo: &Topology, src: DcId, spec: &StreamSpec, seq: &mut u64) -> VecDeque<Batch> {
    let coord = ServerId::new(src, PartitionId(0));
    spec.iter()
        .map(|batch| {
            let txs: Vec<ReplicatedTx> = batch
                .iter()
                .map(|writes| {
                    *seq += 1;
                    ReplicatedTx {
                        tx: TxId::new(coord, *seq),
                        ct: Timestamp::from_physical_micros(100_000 + *seq * 7),
                        src,
                        writes: writes
                            .iter()
                            .map(|&(k, v)| {
                                WriteSetEntry::new(
                                    topo.key_at(PartitionId(0), k as u64),
                                    Value(vec![v, src.0 as u8]),
                                )
                            })
                            .collect(),
                    }
                })
                .collect();
            let watermark = txs.last().expect("non-empty batch").ct;
            let frames = txs.len() as u32;
            Batch {
                src,
                txs,
                watermark,
                frames,
            }
        })
        .collect()
}

/// Every retained version of every key: the store state the paths must
/// agree on, chain order included (chains are newest-first).
fn chains(server: &Server) -> HashMap<Key, Vec<(Timestamp, TxId, DcId, Value)>> {
    let mut out = HashMap::new();
    server.store().for_each_chain(&mut |key, chain| {
        out.insert(
            key,
            chain
                .iter()
                .map(|v| (v.ut, v.tx, v.src, v.value.clone()))
                .collect(),
        );
    });
    out
}

/// Runs one local transaction on both servers in lockstep: the subject
/// through the two public halves (exactly as the write pools run them —
/// staging off-loop, admission on-loop), the model through the
/// monolithic `handle` path. Proposals must match; both then commit at
/// the proposed timestamp.
fn prepare_and_commit_both(
    subject: &mut Server,
    model: &mut Server,
    tx: TxId,
    snapshot: Timestamp,
    writes: &[WriteSetEntry],
    now: u64,
) {
    let coord = model.id();
    let staged = subject.commit_pipeline().stage_prepare(snapshot, writes);
    let from_split = subject.admit_prepared(tx, staged, Timestamp::ZERO, coord, DcId(0));
    let env = Envelope::new(
        coord,
        coord,
        Msg::PrepareReq {
            tx,
            snapshot,
            ht: Timestamp::ZERO,
            writes: writes.to_vec(),
            reply_to: coord,
            src_dc: DcId(0),
        },
    );
    let from_loop = model.handle(&env, now);
    assert_eq!(
        from_split, from_loop,
        "split and loop prepares must propose identically"
    );
    let proposed = match &from_split[0].msg {
        Msg::PrepareResp { proposed, .. } => *proposed,
        other => panic!("expected PrepareResp, got {}", other.kind()),
    };
    let commit = Envelope::new(coord, coord, Msg::CommitTx { tx, ct: proposed });
    subject.handle(&commit, now);
    model.handle(&commit, now);
}

proptest! {
    /// Prepares, commits, replicate-batches and replication ticks woven
    /// into an arbitrary schedule, with the two remote sources' batches
    /// applied in an arbitrary cross-source interleaving through the
    /// split halves — versus a model server fed the identical input in
    /// one canonical order through `handle`. Final version chains,
    /// version vector, UST and pipeline counters must all agree.
    #[test]
    fn split_write_path_matches_monolithic_handle(
        stream_a in arb_stream(),
        stream_b in arb_stream(),
        preps in pvec((pvec((0usize..KEYS, any::<u8>()), 1..4), 1u64..5_000), 0..5),
        sched in pvec(0usize..4, 4..24),
    ) {
        let topo = topo();
        let clock = SimClock::new();
        clock.advance_to(10_000);
        let now = 10_000u64;

        // Subject: a deliberately awkward shape — 4 store shards folded
        // onto 3 lanes — driven through the public split halves. Model:
        // default tuning, driven only through `handle`.
        let mut subject = Server::with_tuning(
            options(&topo, &clock),
            ServerTuning {
                store_shards: Some(4),
                read_slots: None,
                write_lanes: Some(3),
                durable: None,
            },
        );
        let mut model = Server::new(options(&topo, &clock));
        let pipeline = subject.commit_pipeline();

        let mut seq = 0u64;
        let mut queues = [
            make_stream(&topo, DcId(1), &stream_a, &mut seq),
            make_stream(&topo, DcId(2), &stream_b, &mut seq),
        ];
        // Canonical delivery order for the model: source by source —
        // per-source FIFO like every real substrate, but one fixed
        // cross-source order unlike the subject's schedule.
        let canonical: Vec<Batch> =
            queues[0].iter().chain(queues[1].iter()).cloned().collect();
        let total_batches = canonical.len() as u64;
        // A transaction writing one key twice yields a single version
        // (same total-order identity), so count distinct keys per tx.
        let total_versions: u64 = canonical
            .iter()
            .flat_map(|b| &b.txs)
            .map(|t| t.writes.iter().map(|w| w.key).collect::<HashSet<_>>().len() as u64)
            .sum();

        let mut prep_queue: VecDeque<(TxId, Timestamp, Vec<WriteSetEntry>)> = preps
            .iter()
            .enumerate()
            .map(|(i, (spec, snap))| {
                (
                    TxId::new(subject.id(), 1_000_000 + i as u64),
                    Timestamp::from_physical_micros(*snap),
                    spec.iter()
                        .map(|&(k, v)| {
                            WriteSetEntry::new(
                                topo.key_at(PartitionId(0), k as u64),
                                Value(vec![v, 0xEE]),
                            )
                        })
                        .collect(),
                )
            })
            .collect();

        let mut si = 0usize;
        let mut ticks_left = 3u32;
        while !(queues[0].is_empty() && queues[1].is_empty() && prep_queue.is_empty()) {
            let op = sched[si % sched.len()];
            si += 1;
            if op == 3 && ticks_left > 0 {
                ticks_left -= 1;
                // Ticks drain local commits into replicate/heartbeat
                // frames; the split path must not perturb them at any
                // point of the schedule.
                prop_assert_eq!(subject.on_replicate_tick(now), model.on_replicate_tick(now));
                continue;
            }
            if op == 2 {
                if let Some((tx, snapshot, writes)) = prep_queue.pop_front() {
                    prepare_and_commit_both(&mut subject, &mut model, tx, snapshot, &writes, now);
                    continue;
                }
            }
            let pref = usize::from(op == 1);
            let s = if queues[pref].is_empty() { 1 - pref } else { pref };
            if let Some(batch) = queues[s].pop_front() {
                // Subject: the two public halves — store writes through
                // the lanes, then the loop-owned completion.
                pipeline.apply_replicated(&batch.txs);
                let out = subject.note_remote_applied(
                    batch.src,
                    PartitionId(0),
                    &batch.txs,
                    batch.watermark,
                    batch.frames,
                    now,
                );
                prop_assert!(out.is_empty(), "PaRiS mode never blocks on replication");
            } else if let Some((tx, snapshot, writes)) = prep_queue.pop_front() {
                prepare_and_commit_both(&mut subject, &mut model, tx, snapshot, &writes, now);
            }
        }

        // Model: the same batches, canonical order, monolithic handler.
        for batch in canonical {
            let env = Envelope::new(
                ServerId::new(batch.src, PartitionId(0)),
                model.id(),
                Msg::ReplicateBatch {
                    partition: PartitionId(0),
                    txs: batch.txs,
                    watermark: batch.watermark,
                    frames: batch.frames,
                },
            );
            let out = model.handle(&env, now);
            prop_assert!(out.is_empty());
        }

        // Drain local commits on both; outputs must agree one last time.
        prop_assert_eq!(subject.on_replicate_tick(now), model.on_replicate_tick(now));

        prop_assert_eq!(chains(&subject), chains(&model), "version chains diverged");
        prop_assert_eq!(subject.version_vector(), model.version_vector());

        // UST progression: only the staged snapshots may move the
        // frontier here, and both paths must land on their maximum.
        let expected_ust = preps
            .iter()
            .map(|(_, snap)| Timestamp::from_physical_micros(*snap))
            .max()
            .unwrap_or(Timestamp::ZERO);
        prop_assert_eq!(subject.ust(), expected_ust);
        prop_assert_eq!(model.ust(), expected_ust);

        // Counters: both servers route every write through their
        // pipeline, whether the halves ran split or back to back.
        let (s_stats, m_stats) = (subject.stats(), model.stats());
        prop_assert_eq!(s_stats.prepares, preps.len() as u64);
        prop_assert_eq!(s_stats.prepares, m_stats.prepares);
        prop_assert_eq!(s_stats.applied_local, m_stats.applied_local);
        prop_assert_eq!(s_stats.applied_remote, m_stats.applied_remote);
        prop_assert_eq!(pipeline.stats().staged_prepares(), preps.len() as u64);
        prop_assert_eq!(pipeline.stats().lane_batches(), total_batches);
        prop_assert_eq!(pipeline.stats().lane_applies(), total_versions);
        prop_assert_eq!(model.commit_pipeline().stats().lane_applies(), total_versions);
    }

    /// At-least-once delivery: re-running both halves on an already
    /// applied batch (same transactions, same watermark) must change
    /// nothing — chain inserts are idempotent and the version-vector
    /// bump is monotone.
    #[test]
    fn split_apply_is_idempotent_under_redelivery(
        stream in arb_stream(),
        dups in pvec(any::<bool>(), 4..10),
    ) {
        let topo = topo();
        let clock = SimClock::new();
        clock.advance_to(10_000);
        let mut subject = Server::with_tuning(
            options(&topo, &clock),
            ServerTuning {
                store_shards: Some(4),
                read_slots: None,
                write_lanes: Some(2),
                durable: None,
            },
        );
        let mut model = Server::new(options(&topo, &clock));
        let pipeline = subject.commit_pipeline();

        let mut seq = 0u64;
        let batches: Vec<Batch> = make_stream(&topo, DcId(1), &stream, &mut seq).into();
        for (i, batch) in batches.iter().enumerate() {
            let deliveries = if dups[i % dups.len()] { 2 } else { 1 };
            for _ in 0..deliveries {
                pipeline.apply_replicated(&batch.txs);
                let out = subject.note_remote_applied(
                    batch.src,
                    PartitionId(0),
                    &batch.txs,
                    batch.watermark,
                    batch.frames,
                    10_000,
                );
                prop_assert!(out.is_empty());
            }
            let env = Envelope::new(
                ServerId::new(batch.src, PartitionId(0)),
                model.id(),
                Msg::ReplicateBatch {
                    partition: PartitionId(0),
                    txs: batch.txs.clone(),
                    watermark: batch.watermark,
                    frames: batch.frames,
                },
            );
            model.handle(&env, 10_000);
        }

        prop_assert_eq!(
            chains(&subject),
            chains(&model),
            "re-delivered batches must be idempotent"
        );
        prop_assert_eq!(subject.version_vector(), model.version_vector());
        // Re-deliveries applied zero new versions through the lanes.
        prop_assert_eq!(
            pipeline.stats().lane_applies(),
            model.commit_pipeline().stats().lane_applies()
        );
    }
}
