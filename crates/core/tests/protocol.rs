//! End-to-end protocol tests on a hand-pumped miniature cluster.
//!
//! These tests drive the real server/client state machines through a
//! zero-latency synchronous message pump — no network substrate — so any
//! failure is a protocol bug, not a harness artifact.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use paris_clock::SimClock;
use paris_core::{ClientEvent, ClientSession, Mode, ReadStep, Server, ServerOptions, Topology};
use paris_proto::{Endpoint, Envelope};
use paris_types::{ClientId, ClusterConfig, DcId, Key, PartitionId, ServerId, Timestamp, Value};

/// A tiny synchronous cluster: all messages delivered in FIFO order with
/// zero latency; ticks run on demand.
struct MiniCluster {
    topo: Arc<Topology>,
    clock: SimClock,
    servers: HashMap<ServerId, Server>,
    clients: HashMap<ClientId, ClientSession>,
    queue: VecDeque<Envelope>,
    events: Vec<(ClientId, ClientEvent)>,
    now: u64,
}

impl MiniCluster {
    fn new(dcs: u16, partitions: u32, r: u16, mode: Mode) -> Self {
        let cfg = ClusterConfig::builder()
            .dcs(dcs)
            .partitions(partitions)
            .replication_factor(r)
            .max_clock_skew_micros(0)
            .build()
            .unwrap();
        let topo = Arc::new(Topology::new(cfg));
        let clock = SimClock::new();
        let servers = topo
            .all_servers()
            .into_iter()
            .map(|id| {
                (
                    id,
                    Server::new(ServerOptions {
                        id,
                        topology: Arc::clone(&topo),
                        clock: Box::new(clock.clone()),
                        mode,
                        record_events: false,
                    }),
                )
            })
            .collect();
        MiniCluster {
            topo,
            clock,
            servers,
            clients: HashMap::new(),
            queue: VecDeque::new(),
            events: Vec::new(),
            now: 0,
        }
    }

    fn add_client(&mut self, dc: u16, seq: u32, mode: Mode) -> ClientId {
        let id = ClientId::new(DcId(dc), seq);
        let coord = self.topo.coordinator_for(id.dc, id.seq);
        self.clients.insert(id, ClientSession::new(id, coord, mode));
        id
    }

    fn advance(&mut self, micros: u64) {
        self.now += micros;
        self.clock.advance_to(self.now);
    }

    /// Delivers all queued messages until quiescent.
    fn pump(&mut self) {
        while let Some(env) = self.queue.pop_front() {
            match env.dst {
                Endpoint::Server(sid) => {
                    let out = self
                        .servers
                        .get_mut(&sid)
                        .unwrap_or_else(|| panic!("no server {sid}"))
                        .handle(&env, self.now);
                    self.queue.extend(out);
                }
                Endpoint::Client(cid) => {
                    if let Some(ev) = self.clients.get_mut(&cid).unwrap().handle(&env) {
                        self.events.push((cid, ev));
                    }
                }
            }
        }
    }

    /// One round of background ticks on every server, then pump.
    fn tick_all(&mut self) {
        self.advance(1_000);
        let ids: Vec<ServerId> = self.servers.keys().copied().collect();
        for id in &ids {
            let out = self
                .servers
                .get_mut(id)
                .unwrap()
                .on_replicate_tick(self.now);
            self.queue.extend(out);
        }
        self.pump();
        for id in &ids {
            let out = self.servers.get_mut(id).unwrap().on_gst_tick(self.now);
            self.queue.extend(out);
        }
        self.pump();
        // Children reported: roots need a second aggregation pass before
        // their GSV reflects this round's version vectors.
        for id in &ids {
            let out = self.servers.get_mut(id).unwrap().on_gst_tick(self.now);
            self.queue.extend(out);
        }
        self.pump();
        for id in &ids {
            let out = self.servers.get_mut(id).unwrap().on_ust_tick(self.now);
            self.queue.extend(out);
        }
        self.pump();
    }

    fn begin(&mut self, c: ClientId) {
        let env = self.clients.get_mut(&c).unwrap().begin().unwrap();
        self.queue.push_back(env);
        self.pump();
    }

    fn read(&mut self, c: ClientId, keys: &[Key]) -> Vec<(Key, Option<Value>)> {
        let step = self.clients.get_mut(&c).unwrap().read(keys).unwrap();
        let reads = match step {
            ReadStep::Done(reads) => reads,
            ReadStep::Send(env) => {
                self.queue.push_back(env);
                self.pump();
                match self.events.pop() {
                    Some((cid, ClientEvent::ReadDone { reads, .. })) => {
                        assert_eq!(cid, c);
                        reads
                    }
                    other => panic!("expected ReadDone, got {other:?}"),
                }
            }
        };
        reads.into_iter().map(|r| (r.key, r.value)).collect()
    }

    fn write(&mut self, c: ClientId, key: Key, value: &str) {
        self.clients
            .get_mut(&c)
            .unwrap()
            .write(&[(key, Value::from(value))])
            .unwrap();
    }

    fn commit(&mut self, c: ClientId) -> Timestamp {
        let env = self.clients.get_mut(&c).unwrap().commit().unwrap();
        self.queue.push_back(env);
        self.pump();
        match self.events.pop() {
            Some((cid, ClientEvent::Committed { ct, .. })) => {
                assert_eq!(cid, c);
                ct
            }
            other => panic!("expected Committed, got {other:?}"),
        }
    }

    fn value_of(&mut self, c: ClientId, key: Key) -> Option<String> {
        self.read(c, &[key])
            .into_iter()
            .find(|(k, _)| *k == key)
            .and_then(|(_, v)| v)
            .map(|v| String::from_utf8_lossy(v.as_bytes()).into_owned())
    }

    fn min_ust(&self) -> Timestamp {
        self.servers.values().map(|s| s.ust()).min().unwrap()
    }
}

#[test]
fn update_transaction_commits_and_is_readable_after_stabilization() {
    let mut c = MiniCluster::new(3, 6, 2, Mode::Paris);
    let alice = c.add_client(0, 0, Mode::Paris);
    c.advance(10_000);

    c.begin(alice);
    let key = Key(0); // partition 0, replicated at DC0 & DC1
    c.write(alice, key, "hello");
    let ct = c.commit(alice);
    assert!(ct > Timestamp::ZERO);

    // Before stabilization, another client's snapshot cannot include it...
    let bob = c.add_client(1, 0, Mode::Paris);
    c.begin(bob);
    assert_eq!(c.value_of(bob, key), None, "snapshot is stable, so stale");
    c.commit(bob);

    // ... after enough rounds (apply + gossip), the UST covers ct and every
    // client everywhere reads it — without blocking.
    for _ in 0..5 {
        c.tick_all();
    }
    assert!(c.min_ust() >= ct, "UST must cover the committed write");
    c.begin(bob);
    assert_eq!(c.value_of(bob, key), Some("hello".into()));
    c.commit(bob);

    // A client in a DC that does NOT replicate partition 0 (DC2) reads it
    // transparently through a remote slice read.
    let carol = c.add_client(2, 0, Mode::Paris);
    c.begin(carol);
    assert_eq!(c.value_of(carol, key), Some("hello".into()));
}

#[test]
fn read_your_own_writes_via_cache_before_stabilization() {
    let mut c = MiniCluster::new(3, 6, 2, Mode::Paris);
    let alice = c.add_client(0, 0, Mode::Paris);
    c.advance(10_000);

    c.begin(alice);
    c.write(alice, Key(1), "mine");
    c.commit(alice);

    // No stabilization has run: the snapshot cannot include the write, yet
    // the cache must serve it.
    c.begin(alice);
    assert_eq!(c.value_of(alice, Key(1)), Some("mine".into()));
    let session = &c.clients[&alice];
    assert!(session.cache_len() > 0, "cache still holds the write");
    c.commit(alice);

    // After stabilization the cache prunes and the server serves the key.
    for _ in 0..5 {
        c.tick_all();
    }
    c.begin(alice);
    assert_eq!(c.value_of(alice, Key(1)), Some("mine".into()));
    assert_eq!(c.clients[&alice].cache_len(), 0, "pruned by ust_c");
}

#[test]
fn atomicity_multi_partition_writes_visible_together() {
    let mut c = MiniCluster::new(3, 6, 2, Mode::Paris);
    let alice = c.add_client(0, 0, Mode::Paris);
    c.advance(10_000);

    // Keys on different partitions (0 and 1) and different replica sets.
    c.begin(alice);
    c.write(alice, Key(0), "x");
    c.write(alice, Key(1), "y");
    let ct = c.commit(alice);

    for _ in 0..5 {
        c.tick_all();
    }
    assert!(c.min_ust() >= ct);

    // Any other client sees both or neither — here, both.
    let bob = c.add_client(1, 0, Mode::Paris);
    c.begin(bob);
    let reads = c.read(bob, &[Key(0), Key(1)]);
    let vals: Vec<Option<String>> = reads
        .into_iter()
        .map(|(_, v)| v.map(|v| String::from_utf8_lossy(v.as_bytes()).into_owned()))
        .collect();
    assert_eq!(vals.len(), 2);
    assert!(vals.contains(&Some("x".into())) && vals.contains(&Some("y".into())));
}

#[test]
fn causal_order_write_then_dependent_write_has_larger_ct() {
    let mut c = MiniCluster::new(3, 6, 2, Mode::Paris);
    let alice = c.add_client(0, 0, Mode::Paris);
    let bob = c.add_client(1, 0, Mode::Paris);
    c.advance(10_000);

    c.begin(alice);
    c.write(alice, Key(2), "first");
    let ct1 = c.commit(alice);

    for _ in 0..5 {
        c.tick_all();
    }

    // Bob reads Alice's write, then writes a dependent value.
    c.begin(bob);
    assert_eq!(c.value_of(bob, Key(2)), Some("first".into()));
    c.write(bob, Key(3), "second");
    let ct2 = c.commit(bob);
    assert!(
        ct2 > ct1,
        "Proposition 1: dependent update must have larger timestamp"
    );
}

#[test]
fn session_order_is_reflected_in_commit_timestamps() {
    let mut c = MiniCluster::new(3, 6, 2, Mode::Paris);
    let alice = c.add_client(0, 0, Mode::Paris);
    c.advance(10_000);

    let mut last = Timestamp::ZERO;
    for i in 0..5 {
        c.begin(alice);
        c.write(alice, Key(i % 3), "v");
        let ct = c.commit(alice);
        assert!(ct > last, "hwt piggyback must order session commits");
        last = ct;
    }
}

#[test]
fn ust_advances_without_any_writes_via_heartbeats() {
    let mut c = MiniCluster::new(3, 6, 2, Mode::Paris);
    c.advance(50_000);
    for _ in 0..4 {
        c.tick_all();
    }
    let ust = c.min_ust();
    assert!(
        ust > Timestamp::ZERO,
        "heartbeats alone must advance the UST (got {ust})"
    );
}

#[test]
fn snapshots_are_monotonic_per_client_across_coordinator_staleness() {
    let mut c = MiniCluster::new(3, 6, 2, Mode::Paris);
    let alice = c.add_client(0, 0, Mode::Paris);
    c.advance(10_000);
    for _ in 0..3 {
        c.tick_all();
    }

    let mut prev = Timestamp::ZERO;
    for _ in 0..5 {
        c.begin(alice);
        let snap = c.clients[&alice].open_snapshot().unwrap();
        assert!(snap >= prev, "snapshot regressed");
        prev = snap;
        c.commit(alice);
        c.tick_all();
    }
    assert!(prev > Timestamp::ZERO);
}

#[test]
fn bpr_serves_fresh_data_without_waiting_for_ust() {
    let mut c = MiniCluster::new(3, 6, 2, Mode::Bpr);
    let alice = c.add_client(0, 0, Mode::Bpr);
    let bob = c.add_client(1, 0, Mode::Bpr);
    c.advance(10_000);

    c.begin(alice);
    c.write(alice, Key(0), "fresh");
    let ct = c.commit(alice);

    // One replicate round applies the write locally and ships it to the
    // peer replica — no UST progress needed for BPR visibility.
    c.tick_all();
    assert!(c.min_ust() < ct || c.min_ust() >= ct); // ust irrelevant for BPR

    c.begin(bob);
    // Bob's snapshot (coordinator clock) is above ct: the blocking read
    // waits for the apply, which has already happened after tick_all.
    assert_eq!(c.value_of(bob, Key(0)), Some("fresh".into()));
}

#[test]
fn bpr_read_blocks_until_snapshot_installed() {
    let mut c = MiniCluster::new(3, 6, 2, Mode::Bpr);
    let alice = c.add_client(0, 0, Mode::Bpr);
    c.advance(10_000);

    // Client with a fresh snapshot reads a partition that has not applied
    // anything yet: the read must park, then complete after ticks.
    c.begin(alice);
    let step = c.clients.get_mut(&alice).unwrap().read(&[Key(0)]).unwrap();
    let env = match step {
        ReadStep::Send(env) => env,
        ReadStep::Done(_) => panic!("key is not local"),
    };
    c.events.clear(); // drop the Started event
    c.queue.push_back(env);
    c.pump();
    // No ReadDone yet: the slice read is blocked server-side.
    assert!(c.events.is_empty(), "read must block, got {:?}", c.events);
    let blocked: usize = c.servers.values().map(|s| s.blocked_reads_now()).sum();
    assert_eq!(blocked, 1);

    // Version clocks advance past the snapshot via replicate ticks.
    c.tick_all();
    c.tick_all();
    let done = c
        .events
        .iter()
        .any(|(_, e)| matches!(e, ClientEvent::ReadDone { .. }));
    assert!(done, "blocked read must complete once installed");
    let stats_blocked: u64 = c.servers.values().map(|s| s.stats().blocked_reads).sum();
    assert_eq!(stats_blocked, 1);
}

#[test]
fn paris_reads_never_block() {
    let mut c = MiniCluster::new(3, 6, 2, Mode::Paris);
    let alice = c.add_client(0, 0, Mode::Paris);
    c.advance(10_000);
    for _ in 0..3 {
        c.tick_all();
    }
    c.begin(alice);
    // Spread reads over all partitions, local and remote.
    let keys: Vec<Key> = (0..6).map(Key).collect();
    let reads = c.read(alice, &keys);
    assert_eq!(reads.len(), 6);
    let blocked: u64 = c.servers.values().map(|s| s.stats().blocked_reads).sum();
    assert_eq!(blocked, 0, "PaRiS reads must never block");
}

#[test]
fn concurrent_conflicting_writes_converge_last_writer_wins() {
    let mut c = MiniCluster::new(3, 6, 2, Mode::Paris);
    let alice = c.add_client(0, 0, Mode::Paris);
    let bob = c.add_client(1, 0, Mode::Paris);
    c.advance(10_000);

    // Both write key 0 concurrently (no causal order between them).
    c.begin(alice);
    c.begin(bob);
    c.write(alice, Key(0), "from-alice");
    c.write(bob, Key(0), "from-bob");
    let ct_a = c.commit(alice);
    let ct_b = c.commit(bob);

    for _ in 0..6 {
        c.tick_all();
    }

    // All replicas of partition 0 agree on the LWW winner. Ties on the
    // commit timestamp are settled by (tx id, source DC) — §IV-B — so the
    // winner is determined by the full version order, not ct alone.
    let order_a = (ct_a, c.clients[&alice].coordinator().dc);
    let order_b = (ct_b, c.clients[&bob].coordinator().dc);
    let winner = if order_b > order_a {
        "from-bob"
    } else {
        "from-alice"
    };
    for dc in [0u16, 1] {
        let sid = ServerId::new(DcId(dc), PartitionId(0));
        let latest = c.servers[&sid].store().latest(Key(0)).unwrap();
        assert_eq!(
            String::from_utf8_lossy(latest.value.as_bytes()),
            winner,
            "replica {sid} disagreed"
        );
    }

    // And readers see the winner.
    let carol = c.add_client(2, 0, Mode::Paris);
    c.begin(carol);
    assert_eq!(c.value_of(carol, Key(0)), Some(winner.into()));
}

#[test]
fn garbage_collection_trims_old_versions_but_preserves_reads() {
    let mut c = MiniCluster::new(3, 6, 2, Mode::Paris);
    let alice = c.add_client(0, 0, Mode::Paris);
    c.advance(10_000);

    for i in 0..5 {
        c.begin(alice);
        c.write(alice, Key(0), &format!("v{i}"));
        c.commit(alice);
        c.tick_all();
    }
    for _ in 0..4 {
        c.tick_all();
    }

    let sid = ServerId::new(DcId(0), PartitionId(0));
    let before = c.servers[&sid].store().chain(Key(0)).unwrap().len();
    assert!(before >= 5);

    let s_old = c.servers[&sid].s_old();
    assert!(s_old > Timestamp::ZERO, "GC horizon must advance");
    let removed: usize = {
        let server = c.servers.get_mut(&sid).unwrap();
        server.on_gc_tick(0)
    };
    assert!(removed > 0, "old versions must be collected");

    // The latest value is still served.
    let bob = c.add_client(1, 0, Mode::Paris);
    c.begin(bob);
    assert_eq!(c.value_of(bob, Key(0)), Some("v4".into()));
}

#[test]
fn stale_context_cleanup_removes_abandoned_transactions() {
    let mut c = MiniCluster::new(3, 6, 2, Mode::Paris);
    let alice = c.add_client(0, 0, Mode::Paris);
    c.advance(10_000);
    c.begin(alice); // never committed (client "fails")
    let coord = c.clients[&alice].coordinator();
    assert_eq!(c.servers[&coord].open_transactions(), 1);
    c.advance(60_000_000); // one minute later
    let dropped = c
        .servers
        .get_mut(&coord)
        .unwrap()
        .cleanup_stale_contexts(c.now, 30_000_000);
    assert_eq!(dropped, 1);
    assert_eq!(c.servers[&coord].open_transactions(), 0);
}

#[test]
fn read_only_commit_releases_coordinator_context() {
    let mut c = MiniCluster::new(3, 6, 2, Mode::Paris);
    let alice = c.add_client(0, 0, Mode::Paris);
    c.advance(10_000);
    c.begin(alice);
    c.read(alice, &[Key(0)]);
    let coord = c.clients[&alice].coordinator();
    assert_eq!(c.servers[&coord].open_transactions(), 1);
    let ct = c.commit(alice);
    assert_eq!(ct, Timestamp::ZERO, "read-only commit carries no timestamp");
    assert_eq!(c.servers[&coord].open_transactions(), 0);
}

#[test]
fn replication_is_idempotent_under_duplicate_delivery() {
    let mut c = MiniCluster::new(3, 6, 2, Mode::Paris);
    let alice = c.add_client(0, 0, Mode::Paris);
    c.advance(10_000);
    c.begin(alice);
    c.write(alice, Key(0), "once");
    c.commit(alice);

    // Capture the replicate batch from DC0's partition-0 replica and
    // deliver it twice to the peer.
    c.advance(1_000);
    let src = ServerId::new(DcId(0), PartitionId(0));
    let out = c.servers.get_mut(&src).unwrap().on_replicate_tick(c.now);
    let replicate: Vec<Envelope> = out
        .iter()
        .filter(|e| matches!(e.msg, paris_proto::Msg::Replicate { .. }))
        .cloned()
        .collect();
    assert_eq!(replicate.len(), 1);
    for env in out {
        c.queue.push_back(env);
    }
    c.pump();
    // Duplicate delivery.
    c.queue.push_back(replicate[0].clone());
    c.pump();

    let peer = ServerId::new(DcId(1), PartitionId(0));
    let chain = c.servers[&peer].store().chain(Key(0)).unwrap();
    assert_eq!(
        chain.len(),
        1,
        "duplicate replication must not fork versions"
    );
}
