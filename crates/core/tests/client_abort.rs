//! Client-session behaviour around aborted operations (§III-C
//! unavailability): the session must return to idle with no partial
//! effects, and later transactions must be unaffected.

use paris_core::{ClientEvent, ClientSession, Mode, ReadStep};
use paris_proto::{Envelope, Msg};
use paris_types::{ClientId, DcId, Key, PartitionId, ServerId, Timestamp, TxId, Value};

fn session() -> ClientSession {
    ClientSession::new(
        ClientId::new(DcId(0), 1),
        ServerId::new(DcId(0), PartitionId(0)),
        Mode::Paris,
    )
}

fn tx(seq: u64) -> TxId {
    TxId::new(ServerId::new(DcId(0), PartitionId(0)), seq)
}

fn start(s: &mut ClientSession, seq: u64) -> TxId {
    let t = tx(seq);
    s.begin().unwrap();
    let ev = s.handle(&Envelope::new(
        s.coordinator(),
        s.id(),
        Msg::StartTxResp {
            tx: t,
            snapshot: Timestamp::from_physical_micros(100),
        },
    ));
    assert!(matches!(ev, Some(ClientEvent::Started { .. })));
    t
}

#[test]
fn abort_during_read_resets_session() {
    let mut s = session();
    let t = start(&mut s, 1);
    assert!(matches!(s.read(&[Key(1)]).unwrap(), ReadStep::Send(_)));
    let ev = s.handle(&Envelope::new(
        s.coordinator(),
        s.id(),
        Msg::OpFailed { tx: t },
    ));
    assert_eq!(ev, Some(ClientEvent::Aborted { tx: t }));
    assert!(s.open_tx().is_none(), "session is idle after abort");
    // A fresh transaction starts normally.
    let t2 = start(&mut s, 2);
    assert_eq!(s.open_tx(), Some(t2));
}

#[test]
fn abort_during_commit_leaves_no_trace_in_cache() {
    let mut s = session();
    let t = start(&mut s, 1);
    s.write(&[(Key(5), Value::from("doomed"))]).unwrap();
    s.commit().unwrap();
    let ev = s.handle(&Envelope::new(
        s.coordinator(),
        s.id(),
        Msg::OpFailed { tx: t },
    ));
    assert_eq!(ev, Some(ClientEvent::Aborted { tx: t }));
    assert_eq!(s.cache_len(), 0, "aborted writes never reach the cache");
    assert_eq!(s.hwt(), Timestamp::ZERO, "hwt untouched");
    // The doomed write is not readable in the next transaction.
    start(&mut s, 2);
    assert!(
        matches!(s.read(&[Key(5)]).unwrap(), ReadStep::Send(_)),
        "no local tier holds the aborted write"
    );
}

#[test]
fn abort_for_wrong_transaction_is_ignored() {
    let mut s = session();
    let t = start(&mut s, 1);
    let ev = s.handle(&Envelope::new(
        s.coordinator(),
        s.id(),
        Msg::OpFailed { tx: tx(99) },
    ));
    assert!(ev.is_none());
    assert_eq!(s.open_tx(), Some(t), "current transaction unaffected");
}

#[test]
fn counts_do_not_include_aborts_as_commits() {
    let mut s = session();
    let t = start(&mut s, 1);
    s.commit().unwrap();
    s.handle(&Envelope::new(
        s.coordinator(),
        s.id(),
        Msg::OpFailed { tx: t },
    ));
    assert_eq!(s.counts(), (1, 0), "one started, none committed");
}
