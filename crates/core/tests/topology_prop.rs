//! Property tests of the placement and routing invariants the protocol
//! relies on, over arbitrary cluster shapes.

use paris_core::Topology;
use paris_types::{ClusterConfig, DcId, Key, PartitionId};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_shape() -> impl Strategy<Value = (u16, u32, u16)> {
    // dcs 1..=10, r 1..=dcs, partitions 1..=60
    (1u16..=10).prop_flat_map(|dcs| (Just(dcs), 1u32..=60, 1u16..=dcs))
}

proptest! {
    /// Every partition gets exactly R distinct replica DCs, all in range.
    #[test]
    fn prop_every_partition_has_r_distinct_replicas((dcs, parts, r) in arb_shape()) {
        let topo = Topology::new(
            ClusterConfig::builder().dcs(dcs).partitions(parts).replication_factor(r).build().unwrap(),
        );
        for p in 0..parts {
            let reps = topo.replicas(PartitionId(p));
            prop_assert_eq!(reps.len(), usize::from(r));
            let set: HashSet<_> = reps.iter().collect();
            prop_assert_eq!(set.len(), usize::from(r), "replicas must be distinct");
            for dc in reps {
                prop_assert!(dc.0 < dcs);
            }
        }
    }

    /// `replica_idx` agrees with `replicas` everywhere, and is `None`
    /// exactly off the replica set.
    #[test]
    fn prop_replica_idx_consistent((dcs, parts, r) in arb_shape()) {
        let topo = Topology::new(
            ClusterConfig::builder().dcs(dcs).partitions(parts).replication_factor(r).build().unwrap(),
        );
        for p in 0..parts {
            let p = PartitionId(p);
            let reps = topo.replicas(p);
            for dc in 0..dcs {
                let dc = DcId(dc);
                match reps.iter().position(|d| *d == dc) {
                    Some(i) => prop_assert_eq!(
                        topo.replica_idx(p, dc).map(|x| x.index()),
                        Some(i)
                    ),
                    None => prop_assert_eq!(topo.replica_idx(p, dc), None),
                }
            }
        }
    }

    /// Routing always lands on a genuine replica, and is local whenever a
    /// local replica exists.
    #[test]
    fn prop_target_dc_is_always_a_replica((dcs, parts, r) in arb_shape()) {
        let topo = Topology::new(
            ClusterConfig::builder().dcs(dcs).partitions(parts).replication_factor(r).build().unwrap(),
        );
        for p in 0..parts {
            let p = PartitionId(p);
            for dc in 0..dcs {
                let dc = DcId(dc);
                let target = topo.target_dc(p, dc);
                prop_assert!(topo.is_replicated_at(p, target));
                if topo.is_replicated_at(p, dc) {
                    prop_assert_eq!(target, dc, "local replica must be preferred");
                }
            }
        }
    }

    /// The per-DC server lists partition the full replica set: summing
    /// them over DCs counts every partition exactly R times.
    #[test]
    fn prop_servers_cover_placement((dcs, parts, r) in arb_shape()) {
        let topo = Topology::new(
            ClusterConfig::builder().dcs(dcs).partitions(parts).replication_factor(r).build().unwrap(),
        );
        let mut count = vec![0u32; parts as usize];
        for dc in 0..dcs {
            for s in topo.servers_in_dc(DcId(dc)) {
                count[s.partition.index()] += 1;
            }
        }
        prop_assert!(count.iter().all(|&c| c == u32::from(r)));
        prop_assert_eq!(topo.all_servers().len(), (parts * u32::from(r)) as usize);
    }

    /// Key routing is total and stable: every key maps to a partition in
    /// range and `key_at` inverts it.
    #[test]
    fn prop_key_routing_total((dcs, parts, r) in arb_shape(), key in any::<u64>()) {
        let topo = Topology::new(
            ClusterConfig::builder().dcs(dcs).partitions(parts).replication_factor(r).build().unwrap(),
        );
        let p = topo.partition_of(Key(key));
        prop_assert!(p.0 < parts);
        let k2 = topo.key_at(p, key / u64::from(parts));
        prop_assert_eq!(topo.partition_of(k2), p);
    }

    /// The stabilization tree spans every server of a DC exactly once,
    /// for any branching factor.
    #[test]
    fn prop_tree_spans_dc((dcs, parts, r) in arb_shape(), bf in 0usize..5) {
        let topo = Topology::with_branching(
            ClusterConfig::builder().dcs(dcs).partitions(parts).replication_factor(r).build().unwrap(),
            bf,
        );
        for dc in 0..dcs {
            let dc = DcId(dc);
            let servers = topo.servers_in_dc(dc);
            if servers.is_empty() {
                continue; // shapes with fewer partitions than DCs
            }
            let root = topo.dc_root(dc);
            prop_assert_eq!(topo.tree_parent(root), None);
            let mut reached = HashSet::new();
            let mut stack = vec![root];
            while let Some(s) = stack.pop() {
                prop_assert!(reached.insert(s), "cycle at {}", s);
                for c in topo.tree_children(s) {
                    prop_assert_eq!(topo.tree_parent(c), Some(s));
                    stack.push(c);
                }
            }
            prop_assert_eq!(reached.len(), servers.len());
        }
    }

    /// Client coordinators are always local servers.
    #[test]
    fn prop_coordinators_are_local((dcs, parts, r) in arb_shape(), seq in 0u32..1000) {
        let topo = Topology::new(
            ClusterConfig::builder().dcs(dcs).partitions(parts).replication_factor(r).build().unwrap(),
        );
        for dc in 0..dcs {
            let dc = DcId(dc);
            if topo.servers_in_dc(dc).is_empty() {
                continue;
            }
            let c = topo.coordinator_for(dc, seq);
            prop_assert_eq!(c.dc, dc);
            prop_assert!(topo.is_replicated_at(c.partition, dc));
        }
    }
}
