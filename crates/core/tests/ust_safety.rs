//! Property tests of the UST safety invariant under randomized schedules.
//!
//! The paper's Proposition 2 plus the UST definition give the key safety
//! property: `ust ≤ min over all servers of their installed watermark` —
//! a server never believes a snapshot is universally installed while some
//! replica has not applied it. We drive a small cluster with *randomized*
//! interleavings of client operations, replicate/gossip ticks and message
//! deliveries (FIFO per link, as the network guarantees) and assert the
//! invariant at every step, plus the derived guarantee that every version
//! with `ut ≤ ust` is present at every replica of its partition.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use paris_clock::SimClock;
use paris_core::{ClientSession, Mode, ReadStep, Server, ServerOptions, Topology};
use paris_proto::{Endpoint, Envelope};
use paris_types::{ClientId, ClusterConfig, DcId, Key, ServerId, Timestamp, Value};
use proptest::prelude::*;

struct RandomizedCluster {
    topo: Arc<Topology>,
    clock: SimClock,
    servers: HashMap<ServerId, Server>,
    clients: HashMap<ClientId, ClientSession>,
    /// Per ordered (src, dst) link: FIFO queues (the network guarantee).
    links: HashMap<(Endpoint, Endpoint), VecDeque<Envelope>>,
    now: u64,
}

#[derive(Debug, Clone)]
enum Step {
    /// Deliver the head of the k-th non-empty link.
    Deliver(usize),
    /// Replicate tick on the k-th server.
    Replicate(usize),
    /// GST tick on the k-th server.
    Gst(usize),
    /// UST tick on the k-th server.
    Ust(usize),
    /// Client op: begin/write/commit cycle step for the k-th client.
    Client(usize),
    /// Advance the shared clock.
    Advance(u64),
}

impl RandomizedCluster {
    fn new(mode: Mode) -> Self {
        let cfg = ClusterConfig::builder()
            .dcs(3)
            .partitions(3)
            .replication_factor(2)
            .max_clock_skew_micros(0)
            .build()
            .unwrap();
        let topo = Arc::new(Topology::new(cfg));
        let clock = SimClock::new();
        clock.advance_to(1_000);
        let servers = topo
            .all_servers()
            .into_iter()
            .map(|id| {
                (
                    id,
                    Server::new(ServerOptions {
                        id,
                        topology: Arc::clone(&topo),
                        clock: Box::new(clock.clone()),
                        mode,
                        record_events: false,
                    }),
                )
            })
            .collect();
        let mut clients = HashMap::new();
        for dc in 0..3u16 {
            let id = ClientId::new(DcId(dc), 0);
            let coord = topo.coordinator_for(DcId(dc), 0);
            clients.insert(id, ClientSession::new(id, coord, mode));
        }
        RandomizedCluster {
            topo,
            clock,
            servers,
            clients,
            links: HashMap::new(),
            now: 1_000,
        }
    }

    fn enqueue(&mut self, envs: Vec<Envelope>) {
        for env in envs {
            self.links
                .entry((env.src, env.dst))
                .or_default()
                .push_back(env);
        }
    }

    fn non_empty_links(&self) -> Vec<(Endpoint, Endpoint)> {
        let mut keys: Vec<_> = self
            .links
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(k, _)| *k)
            .collect();
        keys.sort_unstable();
        keys
    }

    fn sorted_servers(&self) -> Vec<ServerId> {
        let mut v: Vec<_> = self.servers.keys().copied().collect();
        v.sort_unstable();
        v
    }

    fn apply(&mut self, step: &Step) {
        match step {
            Step::Advance(d) => {
                self.now += d;
                self.clock.advance_to(self.now);
            }
            Step::Deliver(k) => {
                let links = self.non_empty_links();
                if links.is_empty() {
                    return;
                }
                let link = links[k % links.len()];
                let env = self
                    .links
                    .get_mut(&link)
                    .and_then(VecDeque::pop_front)
                    .expect("non-empty");
                match env.dst {
                    Endpoint::Server(sid) => {
                        let out = self.servers.get_mut(&sid).unwrap().handle(&env, self.now);
                        self.enqueue(out);
                    }
                    Endpoint::Client(cid) => {
                        // Drive the client forward on events.
                        let mut follow_ups = Vec::new();
                        if let Some(session) = self.clients.get_mut(&cid) {
                            if let Some(ev) = session.handle(&env) {
                                match ev {
                                    paris_core::ClientEvent::Started { .. } => {
                                        let key = Key(u64::from(cid.dc.0)); // partition = dc
                                        session
                                            .write(&[(key, Value::filled(8, self.now))])
                                            .unwrap();
                                        follow_ups.push(session.commit().unwrap());
                                    }
                                    paris_core::ClientEvent::ReadDone { .. }
                                    | paris_core::ClientEvent::Committed { .. }
                                    | paris_core::ClientEvent::Aborted { .. } => {}
                                }
                            }
                        }
                        self.enqueue(follow_ups);
                    }
                }
            }
            Step::Replicate(k) => {
                let ids = self.sorted_servers();
                let id = ids[k % ids.len()];
                let out = self
                    .servers
                    .get_mut(&id)
                    .unwrap()
                    .on_replicate_tick(self.now);
                self.enqueue(out);
            }
            Step::Gst(k) => {
                let ids = self.sorted_servers();
                let id = ids[k % ids.len()];
                let out = self.servers.get_mut(&id).unwrap().on_gst_tick(self.now);
                self.enqueue(out);
            }
            Step::Ust(k) => {
                let ids = self.sorted_servers();
                let id = ids[k % ids.len()];
                let out = self.servers.get_mut(&id).unwrap().on_ust_tick(self.now);
                self.enqueue(out);
            }
            Step::Client(k) => {
                let mut ids: Vec<_> = self.clients.keys().copied().collect();
                ids.sort_unstable();
                let cid = ids[*k % ids.len()];
                let session = self.clients.get_mut(&cid).unwrap();
                if session.open_tx().is_none() {
                    if let Ok(env) = session.begin() {
                        self.enqueue(vec![env]);
                    }
                }
            }
        }
    }

    /// The invariant: every server's UST is ≤ every server's installed
    /// watermark (min over its version vector).
    fn assert_ust_safety(&self) {
        let min_watermark = self
            .servers
            .values()
            .map(|s| {
                s.version_vector()
                    .values()
                    .copied()
                    .min()
                    .unwrap_or(Timestamp::ZERO)
            })
            .min()
            .unwrap();
        for server in self.servers.values() {
            assert!(
                server.ust() <= min_watermark,
                "{}: ust {:?} exceeds global installed watermark {:?}",
                server.id(),
                server.ust(),
                min_watermark
            );
        }
    }

    /// The Proposition-2 guarantee both modes rely on: a replica whose
    /// installed watermark (min over its version vector) is `w` holds
    /// every version of its partition with `ut ≤ w` — checked against the
    /// union of versions across the replica group. BPR's blocking reads
    /// are correct exactly because of this.
    fn assert_installed_watermark_complete(&self) {
        for p in 0..self.topo.partitions() {
            let p = paris_types::PartitionId(p);
            let replicas = self.topo.replicas(p);
            let mut all: Vec<(paris_types::VersionOrd, Key)> = Vec::new();
            for dc in &replicas {
                self.servers[&ServerId::new(*dc, p)]
                    .store()
                    .for_each_chain(&mut |k, chain| {
                        all.extend(chain.iter().map(|v| (v.order(), k)));
                    });
            }
            for dc in &replicas {
                let server = &self.servers[&ServerId::new(*dc, p)];
                let watermark = server
                    .version_vector()
                    .values()
                    .copied()
                    .min()
                    .unwrap_or(Timestamp::ZERO);
                for (v, key) in &all {
                    if v.ut > watermark {
                        continue;
                    }
                    let present = server
                        .store()
                        .chain(*key)
                        .is_some_and(|c| c.iter().any(|w| w.order() == *v));
                    assert!(
                        present,
                        "{}: claims watermark {watermark:?} but misses {v:?} of {key}",
                        server.id()
                    );
                }
            }
        }
    }

    /// Derived guarantee: every version with `ut ≤ global ust` exists at
    /// every replica of its partition.
    fn assert_stable_versions_everywhere(&self) {
        let ust = self.servers.values().map(Server::ust).max().unwrap();
        for p in 0..self.topo.partitions() {
            let p = paris_types::PartitionId(p);
            let replicas = self.topo.replicas(p);
            // Union of stable versions across replicas…
            let mut stable: Vec<paris_types::VersionOrd> = Vec::new();
            for dc in &replicas {
                let server = &self.servers[&ServerId::new(*dc, p)];
                server.store().for_each_chain(&mut |_, chain| {
                    stable.extend(chain.iter().filter(|v| v.ut <= ust).map(|v| v.order()));
                });
            }
            // …must be present at every replica.
            for dc in &replicas {
                let server = &self.servers[&ServerId::new(*dc, p)];
                for v in &stable {
                    let mut found = false;
                    server.store().for_each_chain(&mut |_, chain| {
                        if !found {
                            found = chain.iter().any(|w| w.order() == *v);
                        }
                    });
                    assert!(
                        found,
                        "version {v:?} (≤ ust {ust:?}) missing at replica {dc} of {p}"
                    );
                }
            }
        }
    }
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => any::<usize>().prop_map(Step::Deliver),
        2 => any::<usize>().prop_map(Step::Replicate),
        2 => any::<usize>().prop_map(Step::Gst),
        1 => any::<usize>().prop_map(Step::Ust),
        2 => any::<usize>().prop_map(Step::Client),
        2 => (1u64..5_000).prop_map(Step::Advance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn prop_ust_never_exceeds_installed_watermark(
        steps in proptest::collection::vec(arb_step(), 50..400)
    ) {
        let mut cluster = RandomizedCluster::new(Mode::Paris);
        for step in &steps {
            cluster.apply(step);
            cluster.assert_ust_safety();
        }
        cluster.assert_stable_versions_everywhere();
    }

    #[test]
    fn prop_bpr_version_vectors_never_over_claim(
        steps in proptest::collection::vec(arb_step(), 50..300)
    ) {
        // BPR's blocking reads are correct because a replica's installed
        // watermark never over-claims: everything at or below it has been
        // applied (Proposition 2). Check after every step.
        let mut cluster = RandomizedCluster::new(Mode::Bpr);
        for step in &steps {
            cluster.apply(step);
        }
        cluster.assert_installed_watermark_complete();
    }

    #[test]
    fn prop_paris_watermarks_never_over_claim(
        steps in proptest::collection::vec(arb_step(), 50..300)
    ) {
        let mut cluster = RandomizedCluster::new(Mode::Paris);
        for step in &steps {
            cluster.apply(step);
        }
        cluster.assert_installed_watermark_complete();
    }
}

#[test]
fn reads_at_or_below_ust_always_succeed_everywhere() {
    // Deterministic companion: after any prefix of activity, start a
    // transaction anywhere — its snapshot is ≤ ust, and by the safety
    // property every replica can serve it without blocking.
    let mut cluster = RandomizedCluster::new(Mode::Paris);
    let steps: Vec<Step> = (0..300)
        .flat_map(|i| {
            vec![
                Step::Client(i),
                Step::Advance(1_000),
                Step::Replicate(i),
                Step::Deliver(i),
                Step::Deliver(i + 1),
                Step::Gst(i),
                Step::Deliver(i),
                Step::Gst(i + 1),
                Step::Deliver(i),
                Step::Ust(i),
                Step::Deliver(i),
                Step::Deliver(i + 2),
            ]
        })
        .collect();
    for step in &steps {
        cluster.apply(step);
    }
    // Drain, then run full stabilization rounds on every server so each
    // DC root recomputes and broadcasts its UST.
    let drain = |cluster: &mut RandomizedCluster| {
        for i in 0..10_000 {
            if cluster.non_empty_links().is_empty() {
                break;
            }
            cluster.apply(&Step::Deliver(i));
        }
    };
    drain(&mut cluster);
    for round in 0..3 {
        let n = cluster.servers.len();
        for k in 0..n {
            cluster.apply(&Step::Replicate(k));
        }
        drain(&mut cluster);
        for _ in 0..2 {
            for k in 0..n {
                cluster.apply(&Step::Gst(k));
            }
            drain(&mut cluster);
        }
        for k in 0..n {
            cluster.apply(&Step::Ust(k));
        }
        drain(&mut cluster);
        let _ = round;
    }
    cluster.assert_ust_safety();
    let ust = cluster.servers.values().map(Server::ust).min().unwrap();
    assert!(ust > Timestamp::ZERO, "activity must advance the UST");

    // A PaRiS read at the stable snapshot is served immediately by every
    // replica (the non-blocking property).
    let mut session = ClientSession::new(
        ClientId::new(DcId(0), 9),
        cluster.topo.coordinator_for(DcId(0), 9),
        Mode::Paris,
    );
    let begin = session.begin().unwrap();
    let coord = begin.dst.as_server().unwrap();
    let out = cluster
        .servers
        .get_mut(&coord)
        .unwrap()
        .handle(&begin, cluster.now);
    for env in &out {
        session.handle(env);
    }
    let step = session.read(&[Key(0), Key(1), Key(2)]).unwrap();
    if let ReadStep::Send(env) = step {
        let out = cluster
            .servers
            .get_mut(&coord)
            .unwrap()
            .handle(&env, cluster.now);
        // Every slice must be answerable; pump until the client has its
        // reads, never requiring a replicate tick (non-blocking).
        let mut queue: VecDeque<Envelope> = out.into();
        let mut done = false;
        let mut guard = 0;
        while let Some(env) = queue.pop_front() {
            guard += 1;
            assert!(guard < 1_000, "read did not complete");
            match env.dst {
                Endpoint::Server(sid) => {
                    queue.extend(
                        cluster
                            .servers
                            .get_mut(&sid)
                            .unwrap()
                            .handle(&env, cluster.now),
                    );
                }
                Endpoint::Client(_) => {
                    if let Some(paris_core::ClientEvent::ReadDone { .. }) = session.handle(&env) {
                        done = true;
                    }
                }
            }
        }
        assert!(done, "PaRiS read must complete without background ticks");
    }
}
