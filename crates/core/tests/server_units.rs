//! Envelope-level unit tests of the server state machine: one handler at
//! a time, including duplicate, stale and out-of-order message cases that
//! the happy-path protocol tests never produce.

use std::sync::Arc;

use paris_clock::SimClock;
use paris_core::{Mode, Server, ServerOptions, Topology};
use paris_proto::{Endpoint, Envelope, Msg, ReplicatedTx};
use paris_types::{
    ClientId, ClusterConfig, DcId, Key, PartitionId, ServerId, Timestamp, TxId, Value,
    WriteSetEntry,
};

fn topo() -> Arc<Topology> {
    Arc::new(Topology::new(
        ClusterConfig::builder()
            .dcs(3)
            .partitions(6)
            .replication_factor(2)
            .build()
            .unwrap(),
    ))
}

fn server_at(topo: &Arc<Topology>, clock: &SimClock, dc: u16, p: u32, mode: Mode) -> Server {
    Server::new(ServerOptions {
        id: ServerId::new(DcId(dc), PartitionId(p)),
        topology: Arc::clone(topo),
        clock: Box::new(clock.clone()),
        mode,
        record_events: true,
    })
}

fn client() -> ClientId {
    ClientId::new(DcId(0), 0)
}

fn start_tx(server: &mut Server, client_ust: u64) -> (TxId, Timestamp) {
    let env = Envelope::new(
        client(),
        server.id(),
        Msg::StartTxReq {
            client_ust: Timestamp::from_physical_micros(client_ust),
        },
    );
    let out = server.handle(&env, 0);
    assert_eq!(out.len(), 1);
    match &out[0].msg {
        Msg::StartTxResp { tx, snapshot } => (*tx, *snapshot),
        other => panic!("expected StartTxResp, got {}", other.kind()),
    }
}

#[test]
fn start_assigns_snapshot_from_ust_in_paris_mode() {
    let topo = topo();
    let clock = SimClock::new();
    clock.advance_to(50_000);
    let mut s = server_at(&topo, &clock, 0, 0, Mode::Paris);
    // Fresh server: ust = 0, so the snapshot is 0 regardless of the clock.
    let (_, snap) = start_tx(&mut s, 0);
    assert_eq!(snap, Timestamp::ZERO);
    // The client's piggybacked ust pulls the server's ust forward
    // (Alg. 2 line 2).
    let (_, snap) = start_tx(&mut s, 30_000);
    assert_eq!(snap.physical_micros(), 30_000);
    assert_eq!(s.ust().physical_micros(), 30_000);
}

#[test]
fn start_assigns_fresh_clock_snapshot_in_bpr_mode() {
    let topo = topo();
    let clock = SimClock::new();
    clock.advance_to(50_000);
    let mut s = server_at(&topo, &clock, 0, 0, Mode::Bpr);
    let (_, snap) = start_tx(&mut s, 0);
    assert_eq!(snap.physical_micros(), 50_000, "BPR snapshot ≈ now");
}

#[test]
fn transaction_ids_are_unique_and_coordinator_tagged() {
    let topo = topo();
    let clock = SimClock::new();
    let mut s = server_at(&topo, &clock, 1, 1, Mode::Paris);
    let (t1, _) = start_tx(&mut s, 0);
    let (t2, _) = start_tx(&mut s, 0);
    assert_ne!(t1, t2);
    assert_eq!(t1.coordinator(), s.id());
    assert_eq!(s.open_transactions(), 2);
}

#[test]
fn read_req_for_unknown_tx_returns_empty_response() {
    let topo = topo();
    let clock = SimClock::new();
    let mut s = server_at(&topo, &clock, 0, 0, Mode::Paris);
    let bogus = TxId::new(s.id(), 999);
    let out = s.handle(
        &Envelope::new(
            client(),
            s.id(),
            Msg::ReadReq {
                tx: bogus,
                keys: vec![Key(0)],
            },
        ),
        0,
    );
    assert_eq!(out.len(), 1);
    match &out[0].msg {
        Msg::ReadResp { results, .. } => assert!(results.is_empty()),
        other => panic!("expected ReadResp, got {}", other.kind()),
    }
}

#[test]
fn read_fan_out_targets_one_replica_per_partition() {
    let topo = topo();
    let clock = SimClock::new();
    let mut s = server_at(&topo, &clock, 0, 0, Mode::Paris);
    let (tx, _) = start_tx(&mut s, 0);
    // Keys on partitions 0..6: exactly one slice request per partition.
    let keys: Vec<Key> = (0..12).map(Key).collect();
    let out = s.handle(
        &Envelope::new(client(), s.id(), Msg::ReadReq { tx, keys }),
        0,
    );
    assert_eq!(out.len(), 6);
    let mut partitions: Vec<u32> = out
        .iter()
        .map(|e| e.dst.as_server().unwrap().partition.0)
        .collect();
    partitions.sort_unstable();
    assert_eq!(partitions, vec![0, 1, 2, 3, 4, 5]);
    for env in &out {
        let dst = env.dst.as_server().unwrap();
        assert!(topo.is_replicated_at(dst.partition, dst.dc));
        match &env.msg {
            Msg::ReadSliceReq { reply_to, .. } => assert_eq!(*reply_to, s.id()),
            other => panic!("expected ReadSliceReq, got {}", other.kind()),
        }
    }
}

#[test]
fn duplicate_read_slice_resp_is_ignored() {
    let topo = topo();
    let clock = SimClock::new();
    let mut s = server_at(&topo, &clock, 0, 0, Mode::Paris);
    let (tx, _) = start_tx(&mut s, 0);
    let out = s.handle(
        &Envelope::new(
            client(),
            s.id(),
            Msg::ReadReq {
                tx,
                keys: vec![Key(0), Key(1)],
            },
        ),
        0,
    );
    assert_eq!(out.len(), 2);
    let from_p0 = Envelope::new(
        ServerId::new(DcId(0), PartitionId(0)),
        s.id(),
        Msg::ReadSliceResp {
            tx,
            partition: PartitionId(0),
            results: vec![],
        },
    );
    // First copy: still waiting for partition 1 → no client reply.
    assert!(s.handle(&from_p0, 0).is_empty());
    // Duplicate: still nothing, and no panic/double-count.
    assert!(s.handle(&from_p0, 0).is_empty());
    // The real second partition completes the read.
    let from_p1 = Envelope::new(
        ServerId::new(DcId(0), PartitionId(1)),
        s.id(),
        Msg::ReadSliceResp {
            tx,
            partition: PartitionId(1),
            results: vec![],
        },
    );
    let out = s.handle(&from_p1, 0);
    assert_eq!(out.len(), 1);
    assert!(matches!(out[0].msg, Msg::ReadResp { .. }));
}

#[test]
fn stale_read_slice_resp_after_tx_finished_is_dropped() {
    let topo = topo();
    let clock = SimClock::new();
    let mut s = server_at(&topo, &clock, 0, 0, Mode::Paris);
    let (tx, _) = start_tx(&mut s, 0);
    // Finish the tx (read-only commit drops the context).
    let out = s.handle(
        &Envelope::new(
            client(),
            s.id(),
            Msg::CommitReq {
                tx,
                hwt: Timestamp::ZERO,
                writes: vec![],
            },
        ),
        0,
    );
    assert!(matches!(out[0].msg, Msg::CommitResp { .. }));
    assert_eq!(s.open_transactions(), 0);
    // A late slice response must be ignored.
    let late = Envelope::new(
        ServerId::new(DcId(0), PartitionId(1)),
        s.id(),
        Msg::ReadSliceResp {
            tx,
            partition: PartitionId(1),
            results: vec![],
        },
    );
    assert!(s.handle(&late, 0).is_empty());
}

#[test]
fn commit_collects_max_proposal_and_notifies_cohorts_and_client() {
    let topo = topo();
    let clock = SimClock::new();
    clock.advance_to(10_000);
    let mut s = server_at(&topo, &clock, 0, 0, Mode::Paris);
    let (tx, _) = start_tx(&mut s, 0);
    let writes = vec![
        WriteSetEntry::new(Key(0), Value::from("a")), // partition 0
        WriteSetEntry::new(Key(1), Value::from("b")), // partition 1
    ];
    let out = s.handle(
        &Envelope::new(
            client(),
            s.id(),
            Msg::CommitReq {
                tx,
                hwt: Timestamp::ZERO,
                writes,
            },
        ),
        0,
    );
    assert_eq!(out.len(), 2, "one PrepareReq per partition");
    // Answer with two different proposals; the commit must pick the max.
    let p1 = Timestamp::from_physical_micros(11_000);
    let p2 = Timestamp::from_physical_micros(12_345);
    assert!(s
        .handle(
            &Envelope::new(
                ServerId::new(DcId(0), PartitionId(0)),
                s.id(),
                Msg::PrepareResp {
                    tx,
                    partition: PartitionId(0),
                    proposed: p1
                },
            ),
            0,
        )
        .is_empty());
    let out = s.handle(
        &Envelope::new(
            ServerId::new(DcId(0), PartitionId(1)),
            s.id(),
            Msg::PrepareResp {
                tx,
                partition: PartitionId(1),
                proposed: p2,
            },
        ),
        0,
    );
    // 2 CommitTx + 1 CommitResp.
    assert_eq!(out.len(), 3);
    let commit_ts: Vec<Timestamp> = out
        .iter()
        .filter_map(|e| match &e.msg {
            Msg::CommitTx { ct, .. } => Some(*ct),
            Msg::CommitResp { ct, .. } => Some(*ct),
            _ => None,
        })
        .collect();
    assert!(commit_ts.iter().all(|ct| *ct == p2), "max proposal wins");
    assert_eq!(s.open_transactions(), 0, "context cleared (Alg. 2 line 28)");
    assert_eq!(s.stats().txs_coordinated, 1);
}

#[test]
fn cohort_prepare_proposes_above_ht_snapshot_and_ust() {
    let topo = topo();
    let clock = SimClock::new();
    let mut s = server_at(&topo, &clock, 0, 0, Mode::Paris);
    let coordinator = ServerId::new(DcId(0), PartitionId(3));
    let tx = TxId::new(coordinator, 1);
    let snapshot = Timestamp::from_physical_micros(5_000);
    let ht = Timestamp::from_physical_micros(9_000);
    let out = s.handle(
        &Envelope::new(
            coordinator,
            s.id(),
            Msg::PrepareReq {
                tx,
                snapshot,
                ht,
                writes: vec![WriteSetEntry::new(Key(0), Value::from("x"))],
                reply_to: coordinator,
                src_dc: DcId(0),
            },
        ),
        0,
    );
    assert_eq!(out.len(), 1);
    let proposed = match &out[0].msg {
        Msg::PrepareResp { proposed, .. } => *proposed,
        other => panic!("expected PrepareResp, got {}", other.kind()),
    };
    assert!(proposed > ht, "proposal reflects session order");
    assert!(proposed > snapshot, "proposal above the snapshot (Lemma 1)");
    assert!(s.ust() >= snapshot, "Alg. 3 line 11 updates the ust");
}

#[test]
fn cohort_commit_applies_on_next_replicate_tick_in_ct_order() {
    let topo = topo();
    let clock = SimClock::new();
    let mut s = server_at(&topo, &clock, 0, 0, Mode::Paris);
    let coordinator = ServerId::new(DcId(0), PartitionId(3));
    // Two transactions prepared, committed out of order.
    let mut cts = Vec::new();
    for seq in 0..2 {
        let tx = TxId::new(coordinator, seq);
        let out = s.handle(
            &Envelope::new(
                coordinator,
                s.id(),
                Msg::PrepareReq {
                    tx,
                    snapshot: Timestamp::ZERO,
                    ht: Timestamp::ZERO,
                    writes: vec![WriteSetEntry::new(Key(0), Value::filled(8, seq))],
                    reply_to: coordinator,
                    src_dc: DcId(0),
                },
            ),
            0,
        );
        let proposed = match &out[0].msg {
            Msg::PrepareResp { proposed, .. } => *proposed,
            _ => unreachable!(),
        };
        cts.push((tx, proposed));
    }
    // Commit the SECOND one first: nothing applies while tx0 is prepared.
    s.handle(
        &Envelope::new(
            coordinator,
            s.id(),
            Msg::CommitTx {
                tx: cts[1].0,
                ct: cts[1].1,
            },
        ),
        0,
    );
    let out = s.on_replicate_tick(10);
    assert!(
        out.iter().all(|e| matches!(e.msg, Msg::Heartbeat { .. })),
        "tx1 must wait behind tx0's outstanding proposal"
    );
    assert!(s.store().latest(Key(0)).is_none());
    // Now commit tx0: the next tick applies both, in ct order.
    s.handle(
        &Envelope::new(
            coordinator,
            s.id(),
            Msg::CommitTx {
                tx: cts[0].0,
                ct: cts[0].1,
            },
        ),
        0,
    );
    let out = s.on_replicate_tick(20);
    let replicate = out
        .iter()
        .find_map(|e| match &e.msg {
            Msg::Replicate { txs, .. } => Some(txs.clone()),
            _ => None,
        })
        .expect("a replication batch");
    assert_eq!(replicate.len(), 2);
    assert!(replicate[0].ct < replicate[1].ct, "ascending ct order");
    assert_eq!(s.stats().applied_local, 2);
}

#[test]
fn replicate_batch_applies_and_advances_peer_clock() {
    let topo = topo();
    let clock = SimClock::new();
    let mut s = server_at(&topo, &clock, 1, 0, Mode::Paris); // replica of p0 at dc1
    let peer = ServerId::new(DcId(0), PartitionId(0));
    let tx = TxId::new(ServerId::new(DcId(0), PartitionId(3)), 1);
    let ct = Timestamp::from_physical_micros(7_000);
    let out = s.handle(
        &Envelope::new(
            peer,
            s.id(),
            Msg::Replicate {
                partition: PartitionId(0),
                txs: vec![ReplicatedTx {
                    tx,
                    ct,
                    src: DcId(0),
                    writes: vec![WriteSetEntry::new(Key(0), Value::from("r"))],
                }],
                watermark: Timestamp::from_physical_micros(8_000),
            },
        ),
        0,
    );
    assert!(out.is_empty(), "PaRiS replication produces no responses");
    assert_eq!(s.store().latest(Key(0)).unwrap().ut, ct);
    assert_eq!(
        s.version_vector()[&DcId(0)],
        Timestamp::from_physical_micros(8_000)
    );
    assert_eq!(s.stats().applied_remote, 1);
}

#[test]
fn heartbeat_advances_clock_without_data() {
    let topo = topo();
    let clock = SimClock::new();
    let mut s = server_at(&topo, &clock, 1, 0, Mode::Paris);
    let peer = ServerId::new(DcId(0), PartitionId(0));
    s.handle(
        &Envelope::new(
            peer,
            s.id(),
            Msg::Heartbeat {
                partition: PartitionId(0),
                watermark: Timestamp::from_physical_micros(9_000),
            },
        ),
        0,
    );
    assert_eq!(
        s.version_vector()[&DcId(0)],
        Timestamp::from_physical_micros(9_000)
    );
    assert_eq!(s.store().stats().versions, 0);
}

#[test]
fn bpr_read_blocks_then_drains_in_blocked_order() {
    let topo = topo();
    let clock = SimClock::new();
    clock.advance_to(10_000);
    let mut s = server_at(&topo, &clock, 0, 0, Mode::Bpr);
    let coordinator = ServerId::new(DcId(0), PartitionId(3));
    // Two reads at increasing snapshots, both above the installed
    // watermark (0): both block.
    for (seq, snap) in [(1u64, 4_000u64), (2, 6_000)] {
        let out = s.handle(
            &Envelope::new(
                coordinator,
                s.id(),
                Msg::ReadSliceReq {
                    tx: TxId::new(coordinator, seq),
                    snapshot: Timestamp::from_physical_micros(snap),
                    keys: vec![Key(0)],
                    reply_to: coordinator,
                },
            ),
            100,
        );
        assert!(out.is_empty());
    }
    assert_eq!(s.blocked_reads_now(), 2);
    // Watermark to 5_000: only the first read drains.
    let peer = ServerId::new(DcId(1), PartitionId(0));
    s.handle(
        &Envelope::new(
            peer,
            s.id(),
            Msg::Heartbeat {
                partition: PartitionId(0),
                watermark: Timestamp::from_physical_micros(5_000),
            },
        ),
        200,
    );
    // Local clock must also advance: replicate tick raises VV[own].
    let out = s.on_replicate_tick(300);
    let served: usize = out
        .iter()
        .filter(|e| matches!(e.msg, Msg::ReadSliceResp { .. }))
        .count();
    assert_eq!(served, 1, "only the ≤-watermark read unblocks");
    assert_eq!(s.blocked_reads_now(), 1);
    assert_eq!(s.stats().blocked_reads, 2);
    assert!(s.stats().blocked_micros_total > 0);
}

#[test]
fn bpr_read_at_installed_snapshot_serves_immediately() {
    let topo = topo();
    let clock = SimClock::new();
    clock.advance_to(10_000);
    let mut s = server_at(&topo, &clock, 0, 0, Mode::Bpr);
    let peer = ServerId::new(DcId(1), PartitionId(0));
    s.handle(
        &Envelope::new(
            peer,
            s.id(),
            Msg::Heartbeat {
                partition: PartitionId(0),
                watermark: Timestamp::from_physical_micros(20_000),
            },
        ),
        0,
    );
    s.on_replicate_tick(10); // VV[own] ≈ clock
    let coordinator = ServerId::new(DcId(0), PartitionId(3));
    let out = s.handle(
        &Envelope::new(
            coordinator,
            s.id(),
            Msg::ReadSliceReq {
                tx: TxId::new(coordinator, 9),
                snapshot: Timestamp::from_physical_micros(9_000),
                keys: vec![Key(0)],
                reply_to: coordinator,
            },
        ),
        20,
    );
    assert_eq!(out.len(), 1);
    assert!(matches!(out[0].msg, Msg::ReadSliceResp { .. }));
    assert_eq!(s.stats().blocked_reads, 0);
}

#[test]
fn ust_broadcast_is_monotonic() {
    let topo = topo();
    let clock = SimClock::new();
    let mut s = server_at(&topo, &clock, 0, 3, Mode::Paris);
    let root = ServerId::new(DcId(0), PartitionId(0));
    let fresh = Timestamp::from_physical_micros(5_000);
    let stale = Timestamp::from_physical_micros(1_000);
    s.handle(
        &Envelope::new(
            root,
            s.id(),
            Msg::UstBroadcast {
                ust: fresh,
                s_old: stale,
            },
        ),
        0,
    );
    assert_eq!(s.ust(), fresh);
    // A stale broadcast (reordered root messages) must not regress it.
    s.handle(
        &Envelope::new(
            root,
            s.id(),
            Msg::UstBroadcast {
                ust: stale,
                s_old: stale,
            },
        ),
        0,
    );
    assert_eq!(s.ust(), fresh);
    assert_eq!(s.s_old(), stale);
}

#[test]
fn root_does_not_broadcast_until_every_dc_reported() {
    let topo = topo();
    let clock = SimClock::new();
    clock.advance_to(10_000);
    // dc0/p0 is the root of DC0 in this topology.
    let mut root = server_at(&topo, &clock, 0, 0, Mode::Paris);
    assert!(topo.tree_parent(root.id()).is_none());
    // Own aggregation exists after a gst tick, but DCs 1 and 2 are silent.
    let out = root.on_gst_tick(0);
    assert!(out.iter().all(|e| matches!(e.msg, Msg::RootGst { .. })));
    assert!(root.on_ust_tick(0).is_empty(), "must wait for all DCs");
    // Reports from the other roots arrive.
    for dc in [1u16, 2] {
        root.handle(
            &Envelope::new(
                topo.dc_root(DcId(dc)),
                root.id(),
                Msg::RootGst {
                    dc: DcId(dc),
                    gst: Timestamp::from_physical_micros(4_000),
                    oldest_active: Timestamp::from_physical_micros(4_000),
                },
            ),
            0,
        );
    }
    let out = root.on_ust_tick(0);
    assert!(!out.is_empty(), "now the UST can be computed and broadcast");
    assert!(out
        .iter()
        .all(|e| matches!(e.msg, Msg::UstBroadcast { .. })));
    // The UST is the minimum over DCs — bounded by the root's own VV (0,
    // since nothing replicated yet).
    assert_eq!(root.ust(), Timestamp::ZERO);
}

#[test]
fn non_root_ust_tick_is_a_no_op() {
    let topo = topo();
    let clock = SimClock::new();
    let mut s = server_at(&topo, &clock, 0, 2, Mode::Paris);
    assert!(topo.tree_parent(s.id()).is_some());
    assert!(s.on_ust_tick(0).is_empty());
}

#[test]
fn gst_tick_from_leaf_reports_to_parent() {
    let topo = topo();
    let clock = SimClock::new();
    let mut s = server_at(&topo, &clock, 0, 2, Mode::Paris);
    let out = s.on_gst_tick(0);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].dst, Endpoint::Server(topo.dc_root(DcId(0))));
    match &out[0].msg {
        Msg::GstReport {
            partition, mins, ..
        } => {
            assert_eq!(*partition, PartitionId(2));
            // p2's replicas are dc2 and dc0: both DCs appear in the report.
            let dcs: Vec<u16> = mins.iter().map(|(d, _)| d.0).collect();
            assert!(dcs.contains(&0) && dcs.contains(&2));
        }
        other => panic!("expected GstReport, got {}", other.kind()),
    }
}

#[test]
fn event_log_records_commits_applies_and_ust() {
    let topo = topo();
    let clock = SimClock::new();
    clock.advance_to(10_000);
    let mut s = server_at(&topo, &clock, 0, 0, Mode::Paris);
    // Local prepare + commit + apply.
    let coordinator = ServerId::new(DcId(0), PartitionId(3));
    let tx = TxId::new(coordinator, 1);
    let out = s.handle(
        &Envelope::new(
            coordinator,
            s.id(),
            Msg::PrepareReq {
                tx,
                snapshot: Timestamp::ZERO,
                ht: Timestamp::ZERO,
                writes: vec![WriteSetEntry::new(Key(0), Value::from("e"))],
                reply_to: coordinator,
                src_dc: DcId(0),
            },
        ),
        5,
    );
    let pt = match &out[0].msg {
        Msg::PrepareResp { proposed, .. } => *proposed,
        _ => unreachable!(),
    };
    s.handle(
        &Envelope::new(coordinator, s.id(), Msg::CommitTx { tx, ct: pt }),
        6,
    );
    s.on_replicate_tick(7);
    let root = ServerId::new(DcId(0), PartitionId(0));
    let _ = root; // s IS the root here; broadcast to self not needed
    s.handle(
        &Envelope::new(
            topo.dc_root(DcId(1)),
            s.id(),
            Msg::UstBroadcast {
                ust: Timestamp::from_physical_micros(1),
                s_old: Timestamp::ZERO,
            },
        ),
        8,
    );
    let log = s.events().expect("recording enabled");
    assert_eq!(log.applies.len(), 1);
    assert_eq!(log.applies[0].0, tx);
    assert_eq!(log.ust_advances.len(), 1);
}

#[test]
fn server_debug_is_informative() {
    let topo = topo();
    let clock = SimClock::new();
    let s = server_at(&topo, &clock, 0, 0, Mode::Paris);
    let dbg = format!("{s:?}");
    assert!(dbg.contains("Server") && dbg.contains("ust"));
}
