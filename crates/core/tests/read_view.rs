//! Tests of the published [`ReadView`]: Algorithm 3 slice reads served
//! off the server loop, non-blocking with respect to the server lock,
//! GC-safe, and agreeing with the loop-served path.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use paris_clock::SimClock;
use paris_core::{Mode, Server, ServerOptions, Topology};
use paris_proto::{Endpoint, Envelope, Msg, ReplicatedTx};
use paris_types::{
    ClientId, ClusterConfig, DcId, Key, PartitionId, ServerId, Timestamp, TxId, Value,
    WriteSetEntry,
};

fn topo() -> Arc<Topology> {
    Arc::new(Topology::new(
        ClusterConfig::builder()
            .dcs(2)
            .partitions(2)
            .replication_factor(2)
            .build()
            .unwrap(),
    ))
}

fn server(mode: Mode) -> (Server, SimClock) {
    let clock = SimClock::new();
    let s = Server::new(ServerOptions {
        id: ServerId::new(DcId(0), PartitionId(0)),
        topology: topo(),
        clock: Box::new(clock.clone()),
        mode,
        record_events: false,
    });
    (s, clock)
}

fn ts(t: u64) -> Timestamp {
    Timestamp::from_physical_micros(t)
}

fn tx(seq: u64) -> TxId {
    TxId::new(ServerId::new(DcId(1), PartitionId(0)), seq)
}

/// Installs a version via the replication path (the single-writer apply).
fn install(s: &mut Server, key: Key, ut: u64, seq: u64) {
    let peer = ServerId::new(DcId(1), PartitionId(0));
    let env = Envelope::new(
        peer,
        s.id(),
        Msg::Replicate {
            partition: PartitionId(0),
            txs: vec![ReplicatedTx {
                tx: tx(seq),
                ct: ts(ut),
                src: DcId(1),
                writes: vec![WriteSetEntry {
                    key,
                    value: Value::filled(8, seq),
                }],
            }],
            watermark: ts(ut),
        },
    );
    s.handle(&env, 0);
}

#[test]
fn view_serves_the_freshest_version_within_the_snapshot() {
    let (mut s, _clock) = server(Mode::Paris);
    install(&mut s, Key(0), 10, 1);
    install(&mut s, Key(0), 20, 2);
    let view = s.read_view();
    let reply_to = ServerId::new(DcId(0), PartitionId(1));
    let env = view
        .serve_slice(tx(9), ts(15), &[Key(0), Key(2)], reply_to)
        .expect("snapshot above S_old");
    let Msg::ReadSliceResp { results, .. } = &env.msg else {
        panic!("expected ReadSliceResp, got {}", env.msg.kind());
    };
    assert_eq!(results.len(), 2);
    assert_eq!(results[0].version.as_ref().unwrap().ut, ts(10));
    assert!(results[1].version.is_none(), "unwritten key");
    // Alg. 3 line 2: serving at snapshot 15 advanced the published UST.
    assert_eq!(s.ust(), ts(15));
    assert_eq!(view.stats().slice_reads(), 1);
    assert_eq!(view.stats().keys_read(), 2);
}

/// The headline property: a view read completes while another thread
/// holds the server lock mid-commit — reads do not block on commits,
/// replication batches or any other server-loop work.
#[test]
fn view_reads_do_not_block_on_a_held_server_lock() {
    let (mut s, _clock) = server(Mode::Paris);
    install(&mut s, Key(0), 10, 1);
    let view = s.read_view();
    let server = Arc::new(Mutex::new(s));

    // Take the server lock, as the threaded runtime does for every commit
    // / replication / gossip step, and hold it for the whole test.
    let guard = server.lock().unwrap();

    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let reader = std::thread::spawn(move || {
        let env = view
            .serve_slice(
                tx(7),
                ts(10),
                &[Key(0)],
                ServerId::new(DcId(0), PartitionId(1)),
            )
            .expect("view read is lock-free");
        done_tx.send(env).expect("main thread alive");
    });

    // The read must complete while the lock is still held.
    let env = done_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("read completed without the server lock");
    drop(guard);
    reader.join().expect("reader panicked");
    let Msg::ReadSliceResp { results, .. } = &env.msg else {
        panic!("expected ReadSliceResp");
    };
    assert_eq!(results[0].version.as_ref().unwrap().ut, ts(10));
}

/// A snapshot below the published `S_old` is rejected by the view (its
/// versions may be reclaimed); the loop-served fallback still answers.
#[test]
fn view_rejects_snapshots_below_the_gc_horizon() {
    let (mut s, _clock) = server(Mode::Paris);
    install(&mut s, Key(0), 10, 1);
    install(&mut s, Key(0), 20, 2);
    // Drive the published S_old up via the stabilization broadcast.
    let root = ServerId::new(DcId(0), PartitionId(1));
    s.handle(
        &Envelope::new(
            root,
            s.id(),
            Msg::UstBroadcast {
                ust: ts(30),
                s_old: ts(15),
            },
        ),
        0,
    );
    let view = s.read_view();
    let reply_to = ServerId::new(DcId(0), PartitionId(1));
    let err = view
        .serve_slice(tx(9), ts(14), &[Key(0)], reply_to)
        .unwrap_err();
    assert_eq!(err.s_old, ts(15));
    assert_eq!(view.stats().stale_rejections(), 1);
    // At the horizon is fine (GC keeps the freshest version ≤ S_old).
    assert!(view.serve_slice(tx(9), ts(15), &[Key(0)], reply_to).is_ok());
    // The server loop path serves the stale snapshot authoritatively
    // (cohort falls back internally on rejection).
    let out = s.handle(
        &Envelope::new(
            reply_to,
            s.id(),
            Msg::ReadSliceReq {
                tx: tx(9),
                snapshot: ts(14),
                keys: vec![Key(0)],
                reply_to,
            },
        ),
        0,
    );
    assert_eq!(out.len(), 1);
    let Msg::ReadSliceResp { results, .. } = &out[0].msg else {
        panic!("expected ReadSliceResp");
    };
    assert_eq!(results[0].version.as_ref().unwrap().ut, ts(10));
}

/// Pooled snapshot assignment (Alg. 2 lines 1–5 off the server loop):
/// the view assigns the snapshot, and the context it registers in the
/// shared transaction table is immediately visible to the loop, which
/// serves the transaction's subsequent read fan-out.
#[test]
fn pooled_start_context_is_visible_to_the_loop() {
    let (mut s, _clock) = server(Mode::Paris);
    install(&mut s, Key(0), 10, 1);
    let view = s.read_view();
    let client = ClientId::new(DcId(0), 7);
    let env = view
        .serve_start_tx(client, ts(5), 0)
        .expect("PaRiS views serve starts");
    let Msg::StartTxResp { tx, snapshot } = env.msg else {
        panic!("expected StartTxResp, got {}", env.msg.kind());
    };
    assert_eq!(env.dst, Endpoint::Client(client));
    assert_eq!(snapshot, s.ust(), "snapshot is the post-advance UST");
    assert!(snapshot >= ts(5), "ust ← max(ust, ust_c)");
    assert_eq!(s.open_transactions(), 1, "context registered");
    assert_eq!(view.stats().start_txs(), 1);
    // The loop recognizes the pooled transaction and fans its read out.
    let out = s.handle(
        &Envelope::new(
            client,
            s.id(),
            Msg::ReadReq {
                tx,
                keys: vec![Key(0)],
            },
        ),
        0,
    );
    assert!(!out.is_empty());
    assert!(
        out.iter()
            .all(|e| matches!(e.msg, Msg::ReadSliceReq { .. })),
        "an unknown tx would have produced an empty ReadResp"
    );
}

/// Snapshot assignment completes while another thread holds the server
/// lock — starts, like reads, never queue behind loop work.
#[test]
fn pooled_start_does_not_block_on_a_held_server_lock() {
    let (s, _clock) = server(Mode::Paris);
    let view = s.read_view();
    let server = Arc::new(Mutex::new(s));
    let guard = server.lock().unwrap();

    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let starter = std::thread::spawn(move || {
        let env = view
            .serve_start_tx(ClientId::new(DcId(0), 1), ts(3), 0)
            .expect("PaRiS view");
        done_tx.send(env).expect("main thread alive");
    });
    let env = done_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("start completed without the server lock");
    drop(guard);
    starter.join().expect("starter panicked");
    assert!(matches!(env.msg, Msg::StartTxResp { .. }));
}

/// BPR snapshots are fresh (HLC-derived) and belong to the loop: views
/// refuse to assign them.
#[test]
fn bpr_views_never_assign_snapshots() {
    let (s, _clock) = server(Mode::Bpr);
    let view = s.read_view();
    assert!(view
        .serve_start_tx(ClientId::new(DcId(0), 1), ts(5), 0)
        .is_none());
    assert_eq!(s.open_transactions(), 0, "no context was registered");
}

/// An in-flight view read pins the GC horizon: `on_gc_tick` must not
/// reclaim versions a registered read may still return.
#[test]
fn inflight_view_read_pins_gc() {
    let (mut s, _clock) = server(Mode::Paris);
    for (ut, seq) in [(10, 1), (20, 2), (30, 3)] {
        install(&mut s, Key(0), ut, seq);
    }
    let view = s.read_view();
    // An in-flight read at snapshot 20, registered while S_old is still 0.
    let pin = view.pin(ts(20)).expect("S_old is zero");
    // S_old then advances to 30: GC alone would trim versions 10 and 20.
    let root = ServerId::new(DcId(0), PartitionId(1));
    s.handle(
        &Envelope::new(
            root,
            s.id(),
            Msg::UstBroadcast {
                ust: ts(30),
                s_old: ts(30),
            },
        ),
        0,
    );
    // The pin caps the horizon at 20, so only version 10 is reclaimed and
    // the pinned read still finds its version.
    assert_eq!(s.on_gc_tick(0), 1);
    assert_eq!(s.store().stats().versions, 2);
    // The version the pinned read is entitled to is still in the store
    // (a fresh registration at 20 would rightly be rejected — the pin
    // protects the read that registered before S_old advanced).
    let v = s.store().read_at(Key(0), ts(20)).expect("pinned visible");
    assert_eq!(v.ut, ts(20));
    // Releasing the pin lets the next GC trim to S_old.
    drop(pin);
    assert_eq!(s.on_gc_tick(0), 1);
    assert_eq!(s.store().stats().versions, 1);
    assert!(view.read_at(Key(0), ts(30)).unwrap().is_some());
}
