//! Cluster topology: partition placement, key routing, replica selection
//! and the stabilization tree.
//!
//! The paper's system model (§II-C): `N` partitions, each key assigned to
//! one partition by a hash function; each partition replicated at `R` of
//! the `M` DCs; every server hosts exactly one partition replica.

use paris_types::{ClusterConfig, DcId, Key, PartitionId, ReplicaIdx, ServerId};

/// Static topology derived from a [`ClusterConfig`].
///
/// Placement rule: partition `n` is replicated at DCs
/// `{(n + k) mod M : k ∈ 0..R}`. This is balanced whenever `N` is a
/// multiple of `M` (all the paper's deployments: e.g. 45 partitions / 5 DCs
/// / R=2 gives exactly 18 servers per DC) and keeps replica groups spread
/// across neighbouring DCs.
///
/// # Example
///
/// ```
/// use paris_core::Topology;
/// use paris_types::{ClusterConfig, DcId, PartitionId};
///
/// let topo = Topology::new(ClusterConfig::default());
/// let replicas = topo.replicas(PartitionId(0));
/// assert_eq!(replicas, vec![DcId(0), DcId(1)]);
/// assert_eq!(topo.servers_in_dc(DcId(0)).len(), 18);
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    cfg: ClusterConfig,
    /// Stabilization-tree branching factor; `0` means a flat (depth-1)
    /// tree rooted at the DC root.
    branching: usize,
}

impl Topology {
    /// Builds the topology for a configuration with a flat stabilization
    /// tree (the paper organizes nodes "as a tree to reduce message
    /// exchange"; depth 1 is the default at the paper's 6–18 servers/DC).
    pub fn new(cfg: ClusterConfig) -> Self {
        Topology { cfg, branching: 0 }
    }

    /// Builds the topology with a bounded-fanout stabilization tree
    /// (children per node ≤ `branching`).
    pub fn with_branching(cfg: ClusterConfig, branching: usize) -> Self {
        Topology { cfg, branching }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Number of DCs `M`.
    pub fn dcs(&self) -> u16 {
        self.cfg.dcs
    }

    /// Number of partitions `N`.
    pub fn partitions(&self) -> u32 {
        self.cfg.partitions
    }

    /// Replication factor `R`.
    pub fn replication_factor(&self) -> u16 {
        self.cfg.replication_factor
    }

    // ------------------------------------------------------------ keys

    /// The partition owning `key` (the deterministic hash of §II-C).
    ///
    /// Keys are laid out as `key = partition + N * rank` so the workload
    /// generator can draw a zipfian `rank` *within* a partition exactly as
    /// the paper's YCSB setup does; the hash is therefore `key mod N`.
    pub fn partition_of(&self, key: Key) -> PartitionId {
        PartitionId((key.as_u64() % u64::from(self.cfg.partitions)) as u32)
    }

    /// The `rank`-th key of `partition` (inverse of [`Self::partition_of`]
    /// composed with the rank layout).
    pub fn key_at(&self, partition: PartitionId, rank: u64) -> Key {
        Key(u64::from(partition.0) + rank * u64::from(self.cfg.partitions))
    }

    // -------------------------------------------------------- placement

    /// The DCs replicating `partition`, in replica-index order.
    pub fn replicas(&self, partition: PartitionId) -> Vec<DcId> {
        (0..self.cfg.replication_factor)
            .map(|k| DcId(((partition.0 + u32::from(k)) % u32::from(self.cfg.dcs)) as u16))
            .collect()
    }

    /// Whether `dc` stores a replica of `partition`.
    pub fn is_replicated_at(&self, partition: PartitionId, dc: DcId) -> bool {
        self.replica_idx(partition, dc).is_some()
    }

    /// The replica index of `dc` within `partition`'s replica group.
    pub fn replica_idx(&self, partition: PartitionId, dc: DcId) -> Option<ReplicaIdx> {
        let m = u32::from(self.cfg.dcs);
        let diff = (u32::from(dc.0) + m - (partition.0 % m)) % m;
        if diff < u32::from(self.cfg.replication_factor) {
            Some(ReplicaIdx(diff as u16))
        } else {
            None
        }
    }

    /// All partitions hosted by `dc`, ascending.
    pub fn partitions_in_dc(&self, dc: DcId) -> Vec<PartitionId> {
        (0..self.cfg.partitions)
            .map(PartitionId)
            .filter(|p| self.is_replicated_at(*p, dc))
            .collect()
    }

    /// All servers hosted by `dc`, ascending by partition.
    pub fn servers_in_dc(&self, dc: DcId) -> Vec<ServerId> {
        self.partitions_in_dc(dc)
            .into_iter()
            .map(|p| ServerId::new(dc, p))
            .collect()
    }

    /// Every server in the system.
    pub fn all_servers(&self) -> Vec<ServerId> {
        (0..self.cfg.dcs)
            .flat_map(|dc| self.servers_in_dc(DcId(dc)))
            .collect()
    }

    /// The peer replicas of server `(dc, partition)`: the servers for the
    /// same partition in the other replica DCs (replication targets,
    /// Alg. 4 line 15).
    pub fn peer_replicas(&self, server: ServerId) -> Vec<ServerId> {
        self.replicas(server.partition)
            .into_iter()
            .filter(|dc| *dc != server.dc)
            .map(|dc| ServerId::new(dc, server.partition))
            .collect()
    }

    // ---------------------------------------------------------- routing

    /// The DC that serves reads/writes of `partition` for traffic
    /// originating in `from_dc` (Alg. 2 `getTargetDCForPartition`).
    ///
    /// Local replica if one exists; otherwise the preferred remote replica,
    /// fixed per (origin DC, partition) and rotated round-robin across
    /// origin DCs to balance load — the paper's §V-A policy.
    pub fn target_dc(&self, partition: PartitionId, from_dc: DcId) -> DcId {
        if self.is_replicated_at(partition, from_dc) {
            return from_dc;
        }
        let replicas = self.replicas(partition);
        replicas[(from_dc.index() + partition.index()) % replicas.len()]
    }

    /// The server that serves `partition` for traffic from `from_dc`.
    pub fn target_server(&self, partition: PartitionId, from_dc: DcId) -> ServerId {
        ServerId::new(self.target_dc(partition, from_dc), partition)
    }

    /// Like [`Self::target_dc`], but skipping DCs currently considered
    /// unreachable. Returns `None` when *no* replica is reachable — the
    /// §III-C unavailability case. The local DC is always reachable.
    ///
    /// This implements the paper's availability claim: "PaRiS achieves
    /// availability in a DC as long as one replica per partition is
    /// reachable by a DC … remote operations can be performed by any DC,
    /// because the snapshot visible to a transaction is the same,
    /// regardless of the partition contacted".
    pub fn reachable_target_dc(
        &self,
        partition: PartitionId,
        from_dc: DcId,
        unreachable: &std::collections::HashSet<DcId>,
    ) -> Option<DcId> {
        if self.is_replicated_at(partition, from_dc) {
            return Some(from_dc);
        }
        let replicas = self.replicas(partition);
        let preferred = (from_dc.index() + partition.index()) % replicas.len();
        (0..replicas.len())
            .map(|k| replicas[(preferred + k) % replicas.len()])
            .find(|dc| !unreachable.contains(dc))
    }

    /// The coordinator assigned to the `seq`-th client of `dc` (clients
    /// are collocated with their coordinator partition, §V-A).
    pub fn coordinator_for(&self, dc: DcId, client_seq: u32) -> ServerId {
        let servers = self.servers_in_dc(dc);
        servers[(client_seq as usize) % servers.len()]
    }

    // ---------------------------------------------- stabilization tree

    /// The root server of `dc`'s stabilization tree (lowest partition id).
    pub fn dc_root(&self, dc: DcId) -> ServerId {
        self.servers_in_dc(dc)
            .first()
            .copied()
            .expect("every DC hosts at least one partition")
    }

    /// The tree parent of `server` within its DC, or `None` for the root.
    pub fn tree_parent(&self, server: ServerId) -> Option<ServerId> {
        let servers = self.servers_in_dc(server.dc);
        let idx = servers.iter().position(|s| *s == server)?;
        if idx == 0 {
            return None;
        }
        let parent_idx = (idx - 1).checked_div(self.branching).unwrap_or(0);
        Some(servers[parent_idx])
    }

    /// The tree children of `server` within its DC.
    pub fn tree_children(&self, server: ServerId) -> Vec<ServerId> {
        let servers = self.servers_in_dc(server.dc);
        let Some(idx) = servers.iter().position(|s| *s == server) else {
            return Vec::new();
        };
        if self.branching == 0 {
            return if idx == 0 {
                servers[1..].to_vec()
            } else {
                Vec::new()
            };
        }
        let first = idx * self.branching + 1;
        (first..first + self.branching)
            .filter_map(|i| servers.get(i).copied())
            .collect()
    }

    /// The roots of all DCs (the UST exchange group, §IV-B).
    pub fn all_roots(&self) -> Vec<ServerId> {
        (0..self.cfg.dcs).map(|dc| self.dc_root(DcId(dc))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_types::Key;
    use std::collections::{HashMap, HashSet};

    fn paper_topology() -> Topology {
        Topology::new(ClusterConfig::default()) // 5 DCs, 45 partitions, R=2
    }

    #[test]
    fn placement_is_balanced_in_paper_deployments() {
        for (dcs, partitions, r) in [(5u16, 45u32, 2u16), (3, 9, 2), (10, 30, 2), (3, 9, 3)] {
            let topo = Topology::new(
                ClusterConfig::builder()
                    .dcs(dcs)
                    .partitions(partitions)
                    .replication_factor(r)
                    .build()
                    .unwrap(),
            );
            let expected = (partitions * u32::from(r) / u32::from(dcs)) as usize;
            for dc in 0..dcs {
                assert_eq!(
                    topo.servers_in_dc(DcId(dc)).len(),
                    expected,
                    "dc{dc} unbalanced for ({dcs},{partitions},{r})"
                );
            }
        }
    }

    #[test]
    fn every_partition_has_exactly_r_replicas() {
        let topo = paper_topology();
        for p in 0..45 {
            let reps = topo.replicas(PartitionId(p));
            assert_eq!(reps.len(), 2);
            assert_eq!(
                reps.iter().collect::<HashSet<_>>().len(),
                2,
                "replicas must be distinct DCs"
            );
        }
    }

    #[test]
    fn replica_idx_is_consistent_with_replicas() {
        let topo = paper_topology();
        for p in 0..45 {
            let p = PartitionId(p);
            for (i, dc) in topo.replicas(p).into_iter().enumerate() {
                assert_eq!(topo.replica_idx(p, dc), Some(ReplicaIdx(i as u16)));
            }
            // A non-replica DC yields None.
            for dc in 0..5u16 {
                let dc = DcId(dc);
                if !topo.replicas(p).contains(&dc) {
                    assert_eq!(topo.replica_idx(p, dc), None);
                }
            }
        }
    }

    #[test]
    fn key_routing_roundtrips() {
        let topo = paper_topology();
        for p in 0..45u32 {
            for rank in [0u64, 1, 99] {
                let key = topo.key_at(PartitionId(p), rank);
                assert_eq!(topo.partition_of(key), PartitionId(p));
            }
        }
        assert_eq!(topo.partition_of(Key(46)), PartitionId(1));
    }

    #[test]
    fn target_dc_prefers_local_replica() {
        let topo = paper_topology();
        // Partition 0 lives at DC0 and DC1.
        assert_eq!(topo.target_dc(PartitionId(0), DcId(0)), DcId(0));
        assert_eq!(topo.target_dc(PartitionId(0), DcId(1)), DcId(1));
        // DC3 does not replicate partition 0: target must be a real replica.
        let t = topo.target_dc(PartitionId(0), DcId(3));
        assert!(topo.replicas(PartitionId(0)).contains(&t));
        assert_ne!(t, DcId(3));
    }

    #[test]
    fn target_dc_round_robin_balances_across_origins() {
        let topo = paper_topology();
        // Different origin DCs should not all pick the same remote replica.
        let mut chosen = HashSet::new();
        for p in 0..45u32 {
            let p = PartitionId(p);
            for dc in 0..5u16 {
                let dc = DcId(dc);
                if !topo.is_replicated_at(p, dc) {
                    chosen.insert((p, topo.target_dc(p, dc)));
                }
            }
        }
        // With R=2 both replicas of various partitions must appear.
        let per_partition: HashMap<PartitionId, usize> =
            chosen.iter().fold(HashMap::new(), |mut acc, (p, _)| {
                *acc.entry(*p).or_default() += 1;
                acc
            });
        assert!(
            per_partition.values().any(|&n| n == 2),
            "round robin must use both replicas somewhere"
        );
    }

    #[test]
    fn peer_replicas_excludes_self() {
        let topo = paper_topology();
        let s = ServerId::new(DcId(0), PartitionId(0));
        let peers = topo.peer_replicas(s);
        assert_eq!(peers, vec![ServerId::new(DcId(1), PartitionId(0))]);
    }

    #[test]
    fn coordinator_assignment_is_collocated_and_rotating() {
        let topo = paper_topology();
        let c0 = topo.coordinator_for(DcId(2), 0);
        let c1 = topo.coordinator_for(DcId(2), 1);
        assert_eq!(c0.dc, DcId(2));
        assert_ne!(c0, c1, "clients rotate over coordinators");
        let n = topo.servers_in_dc(DcId(2)).len() as u32;
        assert_eq!(topo.coordinator_for(DcId(2), n), c0, "wraps around");
    }

    #[test]
    fn flat_tree_has_root_with_all_children() {
        let topo = paper_topology();
        let root = topo.dc_root(DcId(0));
        assert_eq!(topo.tree_parent(root), None);
        let children = topo.tree_children(root);
        assert_eq!(children.len(), topo.servers_in_dc(DcId(0)).len() - 1);
        for c in &children {
            assert_eq!(topo.tree_parent(*c), Some(root));
            assert!(topo.tree_children(*c).is_empty());
        }
    }

    #[test]
    fn bounded_branching_tree_is_consistent() {
        let topo = Topology::with_branching(ClusterConfig::default(), 3);
        let dc = DcId(0);
        let servers = topo.servers_in_dc(dc);
        let root = topo.dc_root(dc);
        // parent/children must agree and reach every node.
        let mut reached = HashSet::new();
        let mut queue = vec![root];
        while let Some(s) = queue.pop() {
            assert!(reached.insert(s), "no cycles");
            for c in topo.tree_children(s) {
                assert_eq!(topo.tree_parent(c), Some(s));
                queue.push(c);
            }
        }
        assert_eq!(reached.len(), servers.len(), "tree spans the DC");
        // Fanout bound respected.
        for s in &servers {
            assert!(topo.tree_children(*s).len() <= 3);
        }
    }

    #[test]
    fn all_roots_and_all_servers_counts() {
        let topo = paper_topology();
        assert_eq!(topo.all_roots().len(), 5);
        assert_eq!(topo.all_servers().len(), 90);
    }

    #[test]
    fn single_dc_full_replication_degenerate_case() {
        let topo = Topology::new(
            ClusterConfig::builder()
                .dcs(1)
                .partitions(4)
                .replication_factor(1)
                .build()
                .unwrap(),
        );
        assert_eq!(topo.servers_in_dc(DcId(0)).len(), 4);
        assert_eq!(topo.target_dc(PartitionId(3), DcId(0)), DcId(0));
        assert!(topo
            .peer_replicas(ServerId::new(DcId(0), PartitionId(1)))
            .is_empty());
    }
}
