//! Metadata-cost taxonomy (paper Table I).
//!
//! Table I classifies causally consistent systems by transaction support,
//! non-blocking reads, partial replication, and the *metadata* each needs
//! to track dependencies. This module provides the analytic cost model for
//! every system in the table and the *measured* cost for PaRiS (from the
//! wire codec), so the `table1` benchmark can print the taxonomy with
//! PaRiS's "1 timestamp" claim verified on real messages.

use paris_proto::{wire, Msg};
use paris_types::Timestamp;

/// Transaction support levels in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxSupport {
    /// No transactions (single-item reads/writes).
    None,
    /// One-shot read-only transactions.
    ReadOnly,
    /// One-shot read-only and write-only transactions.
    ReadOnlyWriteOnly,
    /// Generic interactive read-write transactions.
    Generic,
}

impl std::fmt::Display for TxSupport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxSupport::None => write!(f, "-"),
            TxSupport::ReadOnly => write!(f, "ROT"),
            TxSupport::ReadOnlyWriteOnly => write!(f, "ROT/WOT"),
            TxSupport::Generic => write!(f, "Generic"),
        }
    }
}

/// Dependency-metadata cost classes from Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetadataCost {
    /// A single scalar timestamp (8 bytes here).
    OneTimestamp,
    /// Two scalar timestamps.
    TwoTimestamps,
    /// One timestamp per DC (`M` entries).
    PerDc,
    /// Proportional to the number of explicit dependencies.
    PerDependency,
}

impl MetadataCost {
    /// Bytes of metadata for a deployment of `m` DCs, assuming 8-byte
    /// timestamps and `deps` explicit dependencies where applicable.
    pub fn bytes(self, m: usize, deps: usize) -> usize {
        match self {
            MetadataCost::OneTimestamp => 8,
            MetadataCost::TwoTimestamps => 16,
            MetadataCost::PerDc => 8 * m,
            MetadataCost::PerDependency => 8 * deps,
        }
    }

    /// The Table I notation for this cost class.
    pub fn label(self) -> &'static str {
        match self {
            MetadataCost::OneTimestamp => "1 ts",
            MetadataCost::TwoTimestamps => "2 ts",
            MetadataCost::PerDc => "M",
            MetadataCost::PerDependency => "O(|deps|)",
        }
    }
}

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct SystemRow {
    /// System name.
    pub name: &'static str,
    /// Transaction support.
    pub txs: TxSupport,
    /// Non-blocking (parallel) reads.
    pub nonblocking_reads: bool,
    /// Partial replication support.
    pub partial_replication: bool,
    /// Dependency metadata cost.
    pub metadata: MetadataCost,
}

/// The full Table I, in the paper's row order.
pub fn table1() -> Vec<SystemRow> {
    use MetadataCost::*;
    use TxSupport::*;
    vec![
        SystemRow {
            name: "COPS",
            txs: ReadOnly,
            nonblocking_reads: true,
            partial_replication: false,
            metadata: PerDependency,
        },
        SystemRow {
            name: "Eiger",
            txs: ReadOnlyWriteOnly,
            nonblocking_reads: true,
            partial_replication: false,
            metadata: PerDependency,
        },
        SystemRow {
            name: "ChainReaction",
            txs: ReadOnly,
            nonblocking_reads: false,
            partial_replication: false,
            metadata: PerDc,
        },
        SystemRow {
            name: "Orbe",
            txs: ReadOnly,
            nonblocking_reads: false,
            partial_replication: false,
            metadata: OneTimestamp,
        },
        SystemRow {
            name: "GentleRain",
            txs: ReadOnly,
            nonblocking_reads: false,
            partial_replication: false,
            metadata: OneTimestamp,
        },
        SystemRow {
            name: "POCC",
            txs: ReadOnly,
            nonblocking_reads: false,
            partial_replication: false,
            metadata: PerDc,
        },
        SystemRow {
            name: "COPS-SNOW",
            txs: ReadOnly,
            nonblocking_reads: true,
            partial_replication: false,
            metadata: PerDependency,
        },
        SystemRow {
            name: "OCCULT",
            txs: Generic,
            nonblocking_reads: false,
            partial_replication: false,
            metadata: PerDc,
        },
        SystemRow {
            name: "Cure",
            txs: Generic,
            nonblocking_reads: false,
            partial_replication: false,
            metadata: PerDc,
        },
        SystemRow {
            name: "Wren",
            txs: Generic,
            nonblocking_reads: true,
            partial_replication: false,
            metadata: TwoTimestamps,
        },
        SystemRow {
            name: "AV",
            txs: Generic,
            nonblocking_reads: true,
            partial_replication: false,
            metadata: PerDc,
        },
        SystemRow {
            name: "Xiang-Vaidya",
            txs: None,
            nonblocking_reads: false,
            partial_replication: true,
            metadata: OneTimestamp,
        },
        SystemRow {
            name: "Contrarian",
            txs: ReadOnly,
            nonblocking_reads: true,
            partial_replication: false,
            metadata: PerDc,
        },
        SystemRow {
            name: "C3",
            txs: None,
            nonblocking_reads: true,
            partial_replication: true,
            metadata: PerDc,
        },
        SystemRow {
            name: "Saturn",
            txs: None,
            nonblocking_reads: true,
            partial_replication: true,
            metadata: OneTimestamp,
        },
        SystemRow {
            name: "Karma",
            txs: ReadOnly,
            nonblocking_reads: true,
            partial_replication: true,
            metadata: PerDependency,
        },
        SystemRow {
            name: "CausalSpartan",
            txs: None,
            nonblocking_reads: true,
            partial_replication: false,
            metadata: PerDc,
        },
        SystemRow {
            name: "Bolt-on CC",
            txs: None,
            nonblocking_reads: true,
            partial_replication: false,
            metadata: PerDc,
        },
        SystemRow {
            name: "EunomiaKV",
            txs: None,
            nonblocking_reads: true,
            partial_replication: false,
            metadata: PerDc,
        },
        SystemRow {
            name: "PaRiS",
            txs: Generic,
            nonblocking_reads: true,
            partial_replication: true,
            metadata: OneTimestamp,
        },
    ]
}

/// Measured dependency-metadata bytes of the PaRiS snapshot/dependency
/// machinery, straight off the wire codec: the `ust_c` piggybacked on
/// transaction start and the snapshot returned — both a single 8-byte
/// timestamp, independent of `M` and `N`.
pub fn measured_paris_snapshot_metadata() -> usize {
    let msg = Msg::StartTxReq {
        client_ust: Timestamp::from_parts(123_456, 7),
    };
    wire::metadata_len(&msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paris_row_matches_paper_claims() {
        let rows = table1();
        let paris = rows.last().unwrap();
        assert_eq!(paris.name, "PaRiS");
        assert_eq!(paris.txs, TxSupport::Generic);
        assert!(paris.nonblocking_reads);
        assert!(paris.partial_replication);
        assert_eq!(paris.metadata, MetadataCost::OneTimestamp);
    }

    #[test]
    fn paris_is_unique_in_the_taxonomy() {
        // "PaRiS is the only system that supports partial replication with
        // generic transactions, non-blocking parallel reads, and constant
        // meta-data" — Table I caption.
        let winners: Vec<_> = table1()
            .into_iter()
            .filter(|r| {
                r.txs == TxSupport::Generic
                    && r.nonblocking_reads
                    && r.partial_replication
                    && matches!(
                        r.metadata,
                        MetadataCost::OneTimestamp | MetadataCost::TwoTimestamps
                    )
            })
            .collect();
        assert_eq!(winners.len(), 1);
        assert_eq!(winners[0].name, "PaRiS");
    }

    #[test]
    fn measured_metadata_is_one_timestamp() {
        assert_eq!(measured_paris_snapshot_metadata(), 8);
        assert_eq!(MetadataCost::OneTimestamp.bytes(10, 0), 8);
    }

    #[test]
    fn cost_model_scales_as_labelled() {
        assert_eq!(MetadataCost::PerDc.bytes(10, 0), 80);
        assert_eq!(MetadataCost::PerDependency.bytes(10, 25), 200);
        assert_eq!(MetadataCost::TwoTimestamps.bytes(10, 0), 16);
        assert_eq!(MetadataCost::PerDc.label(), "M");
    }

    #[test]
    fn table_has_twenty_rows_like_the_paper() {
        assert_eq!(table1().len(), 20);
    }

    #[test]
    fn tx_support_display() {
        assert_eq!(TxSupport::Generic.to_string(), "Generic");
        assert_eq!(TxSupport::ReadOnly.to_string(), "ROT");
        assert_eq!(TxSupport::ReadOnlyWriteOnly.to_string(), "ROT/WOT");
        assert_eq!(TxSupport::None.to_string(), "-");
    }
}
