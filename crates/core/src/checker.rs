//! Consistency checking of recorded executions.
//!
//! The paper proves (§IV-C) that PaRiS implements TCC: transactions read
//! from causal snapshots (Proposition 3) and writes are atomic
//! (Proposition 4), building on snapshot < commit (Lemma 1) and
//! `u1 ⇝ u2 ⇒ u1.ut < u2.ut` (Proposition 1). The [`HistoryChecker`]
//! validates the *observable* counterparts of those properties on a
//! recorded execution:
//!
//! * **session monotonicity** — snapshots assigned to a client never
//!   regress;
//! * **Lemma 1** — every update transaction's `ct` exceeds its snapshot;
//! * **read-your-own-writes** — a read never returns a version older than
//!   the session's last committed write of that key;
//! * **repeatable reads** — re-reads in one transaction return the same
//!   version;
//! * **snapshot maximality** — a server-sourced read at snapshot `s`
//!   returns the version with the greatest total order among all versions
//!   of the key with `ut ≤ s` that the whole execution ever produced
//!   (timestamp-based causal snapshots make this equivalent to reading a
//!   causally consistent snapshot, by Proposition 1);
//! * **atomic visibility** — if a transaction reads any version written by
//!   update transaction `T` and also reads another key written by `T`,
//!   it must observe `T`'s write (or a newer one) there too;
//! * **convergence** — after quiescence, all replicas of a partition hold
//!   identical latest versions (last-writer-wins).

use std::collections::{BTreeSet, HashMap};

use paris_types::{ClientId, Key, Timestamp, TxId, VersionOrd};

use crate::client::{ClientRead, ReadSource};

/// A read observed by a client, as recorded for checking.
#[derive(Debug, Clone)]
pub struct RecordedRead {
    /// Key read.
    pub key: Key,
    /// Order tuple of the returned version, `None` when no version was
    /// visible.
    pub version: Option<VersionOrd>,
    /// Which tier satisfied the read.
    pub source: ReadSource,
}

/// One transaction as observed by its client.
#[derive(Debug, Clone)]
pub struct RecordedTx {
    /// Transaction id.
    pub tx: TxId,
    /// Snapshot assigned at start.
    pub snapshot: Timestamp,
    /// All reads, in issue order.
    pub reads: Vec<RecordedRead>,
    /// Keys written.
    pub writes: Vec<Key>,
    /// Commit timestamp (`None` or zero for read-only transactions).
    pub ct: Option<Timestamp>,
}

/// A consistency violation found by the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A client's snapshots regressed.
    NonMonotonicSnapshot {
        /// The offending session.
        client: ClientId,
        /// Earlier snapshot.
        prev: Timestamp,
        /// Later (smaller) snapshot.
        next: Timestamp,
    },
    /// An update transaction's commit time did not exceed its snapshot.
    CommitNotAboveSnapshot {
        /// The transaction.
        tx: TxId,
        /// Its snapshot.
        snapshot: Timestamp,
        /// Its commit time.
        ct: Timestamp,
    },
    /// A read returned a version older than the session's own last write.
    ReadYourWritesViolated {
        /// The session.
        client: ClientId,
        /// The key.
        key: Key,
        /// Commit time of the session's previous write of the key.
        own_write_ct: Timestamp,
        /// What the read returned.
        read: Option<Timestamp>,
    },
    /// Two reads of one key in one transaction disagreed.
    NonRepeatableRead {
        /// The transaction.
        tx: TxId,
        /// The key.
        key: Key,
    },
    /// A server read skipped a visible version (stale or wrong order).
    SnapshotNotMaximal {
        /// The transaction.
        tx: TxId,
        /// The key.
        key: Key,
        /// Snapshot of the transaction.
        snapshot: Timestamp,
        /// Version returned.
        returned: Option<VersionOrd>,
        /// Fresher version that was within the snapshot.
        expected: VersionOrd,
    },
    /// Atomicity broken: part of a transaction's write set observed,
    /// another part missed.
    AtomicityViolated {
        /// The reading transaction.
        reader: TxId,
        /// The writing transaction partially observed.
        writer: TxId,
        /// Key where the writer's version was observed.
        observed_key: Key,
        /// Key where it was missed.
        missed_key: Key,
    },
    /// Replicas of one partition diverged after quiescence.
    ReplicasDiverged {
        /// The key.
        key: Key,
        /// The distinct latest versions seen across replicas.
        versions: Vec<Option<VersionOrd>>,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::NonMonotonicSnapshot { client, prev, next } => write!(
                f,
                "client {client}: snapshot regressed from {prev} to {next}"
            ),
            Violation::CommitNotAboveSnapshot { tx, snapshot, ct } => {
                write!(f, "{tx}: commit {ct} not above snapshot {snapshot}")
            }
            Violation::ReadYourWritesViolated {
                client,
                key,
                own_write_ct,
                read,
            } => write!(
                f,
                "client {client}: read of {key} returned {read:?}, older than own write at {own_write_ct}"
            ),
            Violation::NonRepeatableRead { tx, key } => {
                write!(f, "{tx}: non-repeatable read of {key}")
            }
            Violation::SnapshotNotMaximal {
                tx,
                key,
                snapshot,
                returned,
                expected,
            } => write!(
                f,
                "{tx}: read of {key} at snapshot {snapshot} returned {returned:?} but {expected:?} was visible"
            ),
            Violation::AtomicityViolated {
                reader,
                writer,
                observed_key,
                missed_key,
            } => write!(
                f,
                "{reader}: observed {writer} at {observed_key} but missed it at {missed_key}"
            ),
            Violation::ReplicasDiverged { key, versions } => {
                write!(f, "replicas diverged on {key}: {versions:?}")
            }
        }
    }
}

/// Collects per-session histories and global ground truth, then checks
/// them. See the module docs for the properties verified.
#[derive(Debug, Default)]
pub struct HistoryChecker {
    sessions: HashMap<ClientId, Vec<RecordedTx>>,
    /// Ground truth: every version of every key the execution produced
    /// (collected from the union of all partition stores after the run).
    versions: HashMap<Key, BTreeSet<VersionOrd>>,
    /// Ground truth: write set and commit time per update transaction.
    tx_writes: HashMap<TxId, (Timestamp, Vec<Key>)>,
}

impl HistoryChecker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        HistoryChecker::default()
    }

    /// Records a finished transaction for `client`.
    pub fn record_tx(&mut self, client: ClientId, record: RecordedTx) {
        if let Some(ct) = record.ct {
            if ct != Timestamp::ZERO && !record.writes.is_empty() {
                self.tx_writes
                    .insert(record.tx, (ct, record.writes.clone()));
            }
        }
        self.sessions.entry(client).or_default().push(record);
    }

    /// Converts a [`ClientRead`] into its recorded form.
    pub fn recorded_read(read: &ClientRead) -> RecordedRead {
        RecordedRead {
            key: read.key,
            version: read.version.as_ref().map(|v| v.order()),
            source: read.source,
        }
    }

    /// Registers ground-truth versions of a key (from a partition store).
    pub fn record_versions(&mut self, key: Key, orders: impl IntoIterator<Item = VersionOrd>) {
        self.versions.entry(key).or_default().extend(orders);
    }

    /// Number of transactions recorded.
    pub fn transactions(&self) -> usize {
        self.sessions.values().map(Vec::len).sum()
    }

    /// Runs every check, returning all violations found.
    pub fn check(&self) -> Vec<Violation> {
        let mut violations = Vec::new();
        self.check_sessions(&mut violations);
        self.check_snapshot_maximality(&mut violations);
        self.check_atomicity(&mut violations);
        violations
    }

    fn check_sessions(&self, out: &mut Vec<Violation>) {
        for (client, txs) in &self.sessions {
            let mut prev_snapshot = Timestamp::ZERO;
            // Last committed write per key in this session.
            let mut own_writes: HashMap<Key, Timestamp> = HashMap::new();
            for tx in txs {
                if tx.snapshot < prev_snapshot {
                    out.push(Violation::NonMonotonicSnapshot {
                        client: *client,
                        prev: prev_snapshot,
                        next: tx.snapshot,
                    });
                }
                prev_snapshot = prev_snapshot.max(tx.snapshot);

                if let Some(ct) = tx.ct {
                    if ct != Timestamp::ZERO && ct <= tx.snapshot {
                        out.push(Violation::CommitNotAboveSnapshot {
                            tx: tx.tx,
                            snapshot: tx.snapshot,
                            ct,
                        });
                    }
                }

                // Read-your-writes across transactions.
                for read in &tx.reads {
                    if read.source == ReadSource::WriteSet {
                        continue; // own uncommitted buffer, trivially fine
                    }
                    if let Some(&own_ct) = own_writes.get(&read.key) {
                        let seen = read.version.map(|v| v.ut);
                        if seen.is_none() || seen.unwrap() < own_ct {
                            out.push(Violation::ReadYourWritesViolated {
                                client: *client,
                                key: read.key,
                                own_write_ct: own_ct,
                                read: seen,
                            });
                        }
                    }
                }

                // Repeatable reads within the transaction.
                let mut seen: HashMap<Key, Option<VersionOrd>> = HashMap::new();
                for read in &tx.reads {
                    if read.source == ReadSource::WriteSet {
                        continue;
                    }
                    match seen.get(&read.key) {
                        None => {
                            seen.insert(read.key, read.version);
                        }
                        Some(prev) => {
                            if *prev != read.version {
                                out.push(Violation::NonRepeatableRead {
                                    tx: tx.tx,
                                    key: read.key,
                                });
                            }
                        }
                    }
                }

                // Update own-write map after the transaction commits.
                if let Some(ct) = tx.ct {
                    if ct != Timestamp::ZERO {
                        for key in &tx.writes {
                            own_writes.insert(*key, ct);
                        }
                    }
                }
            }
        }
    }

    fn check_snapshot_maximality(&self, out: &mut Vec<Violation>) {
        for txs in self.sessions.values() {
            for tx in txs {
                for read in &tx.reads {
                    if read.source != ReadSource::Server {
                        continue;
                    }
                    let Some(all) = self.versions.get(&read.key) else {
                        continue;
                    };
                    // Greatest *recorded* version with ut ≤ snapshot. The
                    // recorded set may have holes where garbage collection
                    // removed superseded versions between recording
                    // points, so a read returning something *fresher* than
                    // `expected` is fine (it read a since-collected
                    // version); staleness is returning something *older*
                    // (or nothing) when a visible version is recorded.
                    let expected = all.iter().rev().find(|v| v.ut <= tx.snapshot).copied();
                    let stale = match (read.version, expected) {
                        (None, Some(_)) => true,
                        (Some(r), Some(e)) => r < e,
                        _ => false,
                    };
                    if stale {
                        out.push(Violation::SnapshotNotMaximal {
                            tx: tx.tx,
                            key: read.key,
                            snapshot: tx.snapshot,
                            returned: read.version,
                            expected: expected.expect("stale implies expected"),
                        });
                    }
                }
            }
        }
    }

    fn check_atomicity(&self, out: &mut Vec<Violation>) {
        for txs in self.sessions.values() {
            for tx in txs {
                // Versions observed per writer transaction.
                for read in &tx.reads {
                    let Some(v) = read.version else { continue };
                    if read.source != ReadSource::Server {
                        continue;
                    }
                    let Some((writer_ct, writer_keys)) = self.tx_writes.get(&v.tx) else {
                        continue;
                    };
                    // For every other key the writer wrote that this
                    // transaction also read from a server, the read must
                    // observe the writer's version or something newer.
                    for other in &tx.reads {
                        if other.source != ReadSource::Server || other.key == read.key {
                            continue;
                        }
                        if !writer_keys.contains(&other.key) {
                            continue;
                        }
                        let ok = match other.version {
                            Some(ov) => ov.ut >= *writer_ct,
                            None => false,
                        };
                        if !ok {
                            out.push(Violation::AtomicityViolated {
                                reader: tx.tx,
                                writer: v.tx,
                                observed_key: read.key,
                                missed_key: other.key,
                            });
                        }
                    }
                }
            }
        }
    }

    /// Convergence check: given, per partition, the latest version of each
    /// key at each replica, verify all replicas agree. Call after the
    /// system quiesced (all replication applied).
    pub fn check_convergence(
        replica_latest: &[HashMap<Key, Option<VersionOrd>>],
    ) -> Vec<Violation> {
        let mut out = Vec::new();
        let mut keys: BTreeSet<Key> = BTreeSet::new();
        for m in replica_latest {
            keys.extend(m.keys().copied());
        }
        for key in keys {
            let versions: Vec<Option<VersionOrd>> = replica_latest
                .iter()
                .map(|m| m.get(&key).copied().flatten())
                .collect();
            if versions.windows(2).any(|w| w[0] != w[1]) {
                out.push(Violation::ReplicasDiverged { key, versions });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_types::{DcId, PartitionId, ServerId};

    fn tx_id(seq: u64) -> TxId {
        TxId::new(ServerId::new(DcId(0), PartitionId(0)), seq)
    }

    fn client() -> ClientId {
        ClientId::new(DcId(0), 0)
    }

    fn ord(ut: u64, seq: u64) -> VersionOrd {
        VersionOrd {
            ut: Timestamp::from_physical_micros(ut),
            tx: tx_id(seq),
            src: DcId(0),
        }
    }

    fn server_read(key: u64, v: Option<VersionOrd>) -> RecordedRead {
        RecordedRead {
            key: Key(key),
            version: v,
            source: ReadSource::Server,
        }
    }

    #[test]
    fn clean_history_has_no_violations() {
        let mut c = HistoryChecker::new();
        c.record_versions(Key(1), [ord(10, 1)]);
        c.record_tx(
            client(),
            RecordedTx {
                tx: tx_id(1),
                snapshot: Timestamp::from_physical_micros(5),
                reads: vec![],
                writes: vec![Key(1)],
                ct: Some(Timestamp::from_physical_micros(10)),
            },
        );
        c.record_tx(
            client(),
            RecordedTx {
                tx: tx_id(2),
                snapshot: Timestamp::from_physical_micros(20),
                reads: vec![server_read(1, Some(ord(10, 1)))],
                writes: vec![],
                ct: None,
            },
        );
        assert!(c.check().is_empty(), "{:?}", c.check());
        assert_eq!(c.transactions(), 2);
    }

    #[test]
    fn detects_non_monotonic_snapshot() {
        let mut c = HistoryChecker::new();
        for (seq, snap) in [(1u64, 100u64), (2, 50)] {
            c.record_tx(
                client(),
                RecordedTx {
                    tx: tx_id(seq),
                    snapshot: Timestamp::from_physical_micros(snap),
                    reads: vec![],
                    writes: vec![],
                    ct: None,
                },
            );
        }
        let v = c.check();
        assert!(matches!(v[0], Violation::NonMonotonicSnapshot { .. }));
    }

    #[test]
    fn detects_commit_not_above_snapshot() {
        let mut c = HistoryChecker::new();
        c.record_tx(
            client(),
            RecordedTx {
                tx: tx_id(1),
                snapshot: Timestamp::from_physical_micros(100),
                reads: vec![],
                writes: vec![Key(1)],
                ct: Some(Timestamp::from_physical_micros(100)),
            },
        );
        let v = c.check();
        assert!(matches!(v[0], Violation::CommitNotAboveSnapshot { .. }));
    }

    #[test]
    fn detects_read_your_writes_violation() {
        let mut c = HistoryChecker::new();
        c.record_tx(
            client(),
            RecordedTx {
                tx: tx_id(1),
                snapshot: Timestamp::from_physical_micros(5),
                reads: vec![],
                writes: vec![Key(9)],
                ct: Some(Timestamp::from_physical_micros(50)),
            },
        );
        // Later read sees an older version.
        c.record_tx(
            client(),
            RecordedTx {
                tx: tx_id(2),
                snapshot: Timestamp::from_physical_micros(10),
                reads: vec![server_read(9, Some(ord(8, 0)))],
                writes: vec![],
                ct: None,
            },
        );
        let v = c.check();
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::ReadYourWritesViolated { .. })));
    }

    #[test]
    fn cache_read_satisfies_read_your_writes() {
        let mut c = HistoryChecker::new();
        c.record_tx(
            client(),
            RecordedTx {
                tx: tx_id(1),
                snapshot: Timestamp::from_physical_micros(5),
                reads: vec![],
                writes: vec![Key(9)],
                ct: Some(Timestamp::from_physical_micros(50)),
            },
        );
        c.record_tx(
            client(),
            RecordedTx {
                tx: tx_id(2),
                snapshot: Timestamp::from_physical_micros(10),
                reads: vec![RecordedRead {
                    key: Key(9),
                    version: Some(ord(50, 1)),
                    source: ReadSource::Cache,
                }],
                writes: vec![],
                ct: None,
            },
        );
        assert!(c.check().is_empty(), "{:?}", c.check());
    }

    #[test]
    fn detects_non_repeatable_read() {
        let mut c = HistoryChecker::new();
        c.record_tx(
            client(),
            RecordedTx {
                tx: tx_id(1),
                snapshot: Timestamp::from_physical_micros(100),
                reads: vec![
                    server_read(1, Some(ord(10, 1))),
                    server_read(1, Some(ord(20, 2))),
                ],
                writes: vec![],
                ct: None,
            },
        );
        let v = c.check();
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::NonRepeatableRead { .. })));
    }

    #[test]
    fn detects_stale_read() {
        let mut c = HistoryChecker::new();
        c.record_versions(Key(1), [ord(10, 1), ord(20, 2)]);
        c.record_tx(
            client(),
            RecordedTx {
                tx: tx_id(3),
                snapshot: Timestamp::from_physical_micros(25),
                reads: vec![server_read(1, Some(ord(10, 1)))], // missed ord(20)
                writes: vec![],
                ct: None,
            },
        );
        let v = c.check();
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::SnapshotNotMaximal { .. })));
    }

    #[test]
    fn fresh_read_within_snapshot_passes() {
        let mut c = HistoryChecker::new();
        c.record_versions(Key(1), [ord(10, 1), ord(30, 2)]);
        c.record_tx(
            client(),
            RecordedTx {
                tx: tx_id(3),
                snapshot: Timestamp::from_physical_micros(25),
                reads: vec![server_read(1, Some(ord(10, 1)))], // 30 is above snapshot
                writes: vec![],
                ct: None,
            },
        );
        assert!(c.check().is_empty());
    }

    #[test]
    fn detects_atomicity_violation() {
        let mut c = HistoryChecker::new();
        // Writer tx 7 wrote keys 1 and 2 at ct=40.
        c.record_tx(
            ClientId::new(DcId(1), 9),
            RecordedTx {
                tx: tx_id(7),
                snapshot: Timestamp::from_physical_micros(30),
                reads: vec![],
                writes: vec![Key(1), Key(2)],
                ct: Some(Timestamp::from_physical_micros(40)),
            },
        );
        // Reader observes tx 7 at key 1 but misses it at key 2.
        c.record_tx(
            client(),
            RecordedTx {
                tx: tx_id(8),
                snapshot: Timestamp::from_physical_micros(50),
                reads: vec![
                    server_read(1, Some(ord(40, 7))),
                    server_read(2, Some(ord(5, 0))),
                ],
                writes: vec![],
                ct: None,
            },
        );
        let v = c.check();
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::AtomicityViolated { .. })));
    }

    #[test]
    fn atomic_observation_passes() {
        let mut c = HistoryChecker::new();
        c.record_tx(
            ClientId::new(DcId(1), 9),
            RecordedTx {
                tx: tx_id(7),
                snapshot: Timestamp::from_physical_micros(30),
                reads: vec![],
                writes: vec![Key(1), Key(2)],
                ct: Some(Timestamp::from_physical_micros(40)),
            },
        );
        c.record_tx(
            client(),
            RecordedTx {
                tx: tx_id(8),
                snapshot: Timestamp::from_physical_micros(50),
                reads: vec![
                    server_read(1, Some(ord(40, 7))),
                    server_read(2, Some(ord(40, 7))),
                ],
                writes: vec![],
                ct: None,
            },
        );
        assert!(c.check().is_empty());
    }

    #[test]
    fn convergence_detects_divergence() {
        let mut a = HashMap::new();
        a.insert(Key(1), Some(ord(10, 1)));
        let mut b = HashMap::new();
        b.insert(Key(1), Some(ord(20, 2)));
        let v = HistoryChecker::check_convergence(&[a.clone(), b]);
        assert!(matches!(v[0], Violation::ReplicasDiverged { .. }));
        assert!(HistoryChecker::check_convergence(&[a.clone(), a]).is_empty());
    }

    #[test]
    fn violations_display_nonempty() {
        let v = Violation::NonRepeatableRead {
            tx: tx_id(1),
            key: Key(3),
        };
        assert!(!v.to_string().is_empty());
    }
}
