//! The shared stabilization child-report table.
//!
//! Every ∆G each tree child pushes a `GstReport` (its subtree's
//! per-source-DC minima plus its oldest active snapshot) one level up;
//! the parent folds the freshest report per child into its own aggregate
//! (see [`super::Server::on_gst_tick`]). Historically the table was a
//! plain field of the server state machine — which meant report frames
//! queued behind commits, replication batches and reads on the server
//! mailbox. Folding a report is read-only with respect to storage, so
//! the threaded runtime now taps unbatched `GstReport`s into the read
//! pool and serves them through [`crate::ReadView::serve_gst_report`];
//! this table is the state both paths share.
//!
//! **Why folding is not a plain overwrite.** On the FIFO server loop the
//! later report is always the fresher one, so overwriting was exact. Pool
//! lanes, however, may deliver two reports from the same child out of
//! order — and while the `mins` vector is monotone (version vectors only
//! grow), `oldest_active` is *not*: a newly started transaction can pull
//! it back down. Overwriting a fresh low `oldest_active` with a stale
//! high one would overstate the `S_old` aggregate and let GC reclaim
//! versions an active transaction still reads. The fold therefore uses
//! the monotone `mins` as the freshness witness: an incoming report
//! replaces `oldest_active` only when its `mins` are entry-wise at least
//! the stored ones (it provably was sent no earlier); `mins` themselves
//! always merge entry-wise `max`; and on an exact `mins` tie the lower
//! `oldest_active` wins — conservative, and corrected by the next
//! genuine report. Every outcome either equals the FIFO result or
//! under-approximates it, which is the safe direction for both the GST
//! (stability) and `S_old` (GC) aggregates.

use std::collections::HashMap;
use std::sync::Mutex;

use paris_types::{DcId, PartitionId, Timestamp};

/// One stored child report: the subtree's per-source-DC minima plus its
/// oldest active snapshot.
type StoredReport = (Vec<(DcId, Timestamp)>, Timestamp);

/// Freshest-known report per tree child, shared between a server's state
/// machine and all its [`crate::ReadView`]s. See the module docs.
#[derive(Debug, Default)]
pub struct ReportTable {
    reports: Mutex<HashMap<PartitionId, StoredReport>>,
}

impl ReportTable {
    /// Seeds a child at `Timestamp::ZERO` for every DC it replicates
    /// with, so the parent's aggregate under-approximates children it
    /// has not heard from yet (the stabilization safety requirement).
    pub(crate) fn seed(&self, partition: PartitionId, dcs: impl IntoIterator<Item = DcId>) {
        let mins: Vec<(DcId, Timestamp)> =
            dcs.into_iter().map(|dc| (dc, Timestamp::ZERO)).collect();
        self.reports
            .lock()
            .expect("report table poisoned")
            .insert(partition, (mins, Timestamp::ZERO));
    }

    /// Folds one child report (loop- or pool-served) under the ordering
    /// rule in the module docs.
    pub(crate) fn fold(
        &self,
        partition: PartitionId,
        mins: &[(DcId, Timestamp)],
        oldest_active: Timestamp,
    ) {
        let mut table = self.reports.lock().expect("report table poisoned");
        let (stored_mins, stored_oldest) = table
            .entry(partition)
            .or_insert_with(|| (Vec::new(), Timestamp::ZERO));
        // Freshness witness, judged *before* the merge: the vv entries a
        // report carries only ever grow, so a report sent later is
        // entry-wise ≥ one sent earlier — and strictly greater somewhere
        // unless the child's state did not move between the two.
        let dominates = stored_mins.iter().all(|(dc, stored)| {
            mins.iter()
                .find(|(d, _)| d == dc)
                .is_some_and(|(_, ts)| ts >= stored)
        });
        let strictly_fresher = dominates
            && stored_mins.iter().any(|(dc, stored)| {
                mins.iter()
                    .find(|(d, _)| d == dc)
                    .is_some_and(|(_, ts)| ts > stored)
            });
        for (dc, ts) in mins {
            match stored_mins.iter_mut().find(|(d, _)| d == dc) {
                Some((_, cur)) => *cur = (*cur).max(*ts),
                None => stored_mins.push((*dc, *ts)),
            }
        }
        if strictly_fresher {
            *stored_oldest = oldest_active;
        } else if dominates {
            // Same mins on both sides: order unknowable, keep the
            // conservative (lower) oldest-active.
            *stored_oldest = (*stored_oldest).min(oldest_active);
        }
    }

    /// Visits every child's freshest report under the lock (the ∆G
    /// aggregation pass).
    pub(crate) fn for_each(&self, mut f: impl FnMut(&[(DcId, Timestamp)], Timestamp)) {
        for (mins, oldest) in self.reports.lock().expect("report table poisoned").values() {
            f(mins, *oldest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(t: u64) -> Timestamp {
        Timestamp::from_physical_micros(t)
    }

    fn collect(table: &ReportTable) -> Vec<(Vec<(DcId, Timestamp)>, Timestamp)> {
        let mut out = Vec::new();
        table.for_each(|mins, oldest| out.push((mins.to_vec(), oldest)));
        out
    }

    #[test]
    fn seed_under_approximates() {
        let t = ReportTable::default();
        t.seed(PartitionId(1), [DcId(0), DcId(1)]);
        let got = collect(&t);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, vec![(DcId(0), ts(0)), (DcId(1), ts(0))]);
        assert_eq!(got[0].1, ts(0));
    }

    #[test]
    fn in_order_reports_behave_like_overwrite() {
        let t = ReportTable::default();
        t.seed(PartitionId(1), [DcId(0)]);
        t.fold(PartitionId(1), &[(DcId(0), ts(10))], ts(5));
        // Fresher report with a *lower* oldest (a new tx started): must
        // be accepted, exactly like the FIFO loop path.
        t.fold(PartitionId(1), &[(DcId(0), ts(20))], ts(3));
        let got = collect(&t);
        assert_eq!(got[0].0, vec![(DcId(0), ts(20))]);
        assert_eq!(got[0].1, ts(3));
    }

    #[test]
    fn stale_report_cannot_raise_oldest_active() {
        let t = ReportTable::default();
        t.seed(PartitionId(1), [DcId(0)]);
        // Fresh report arrives first (racing lanes): mins 20, oldest 3.
        t.fold(PartitionId(1), &[(DcId(0), ts(20))], ts(3));
        // The stale one (sent earlier: mins 10, oldest 15) lands second.
        t.fold(PartitionId(1), &[(DcId(0), ts(10))], ts(15));
        let got = collect(&t);
        assert_eq!(got[0].0, vec![(DcId(0), ts(20))], "mins keep the max");
        assert_eq!(got[0].1, ts(3), "stale oldest_active must not win");
    }

    #[test]
    fn tied_mins_keep_the_conservative_oldest() {
        let t = ReportTable::default();
        t.seed(PartitionId(1), [DcId(0)]);
        t.fold(PartitionId(1), &[(DcId(0), ts(10))], ts(9));
        t.fold(PartitionId(1), &[(DcId(0), ts(10))], ts(4));
        assert_eq!(collect(&t)[0].1, ts(4), "tie takes the lower oldest");
        t.fold(PartitionId(1), &[(DcId(0), ts(10))], ts(7));
        assert_eq!(collect(&t)[0].1, ts(4), "a tied higher oldest loses");
        // The next genuinely fresher report corrects it upward.
        t.fold(PartitionId(1), &[(DcId(0), ts(11))], ts(7));
        assert_eq!(collect(&t)[0].1, ts(7));
    }
}
