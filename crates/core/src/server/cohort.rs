//! Transaction-cohort role (paper Algorithm 3).

use paris_proto::{Envelope, Msg, ReadResult};
use paris_types::{DcId, Key, Mode, ServerId, Timestamp, TxId, WriteSetEntry};

use super::{BlockedRead, CommittedTx, PreparedTx, Server};

impl Server {
    /// `ReadSliceReq` (Alg. 3 lines 1–8).
    ///
    /// PaRiS serves immediately: the snapshot is universally stable, so the
    /// freshest version `≤ snapshot` is guaranteed present — the
    /// non-blocking read property. The serve goes through the same
    /// [`crate::ReadView`] path the threaded runtime's read pool uses, so
    /// every backend exercises one code path; in the rare case the view
    /// rejects (snapshot below `S_old`), this loop — which serializes with
    /// its own GC — serves authoritatively. BPR must first check that the
    /// partition has *installed* the (fresh) snapshot — `min(VV) ≥
    /// snapshot` — and parks the read otherwise (§V).
    pub(super) fn on_read_slice_req(
        &mut self,
        tx: TxId,
        snapshot: Timestamp,
        keys: &[Key],
        reply_to: ServerId,
        now: u64,
    ) -> Vec<Envelope> {
        match self.mode {
            Mode::Paris => {
                // This loop serializes with its own GC, so one S_old check
                // suffices: a below-horizon snapshot (a read the pool
                // punted back, or one that raced a horizon advance) is
                // served directly, without a doomed view registration.
                if snapshot < self.frontier.s_old() {
                    return vec![self.serve_slice(tx, snapshot, keys, reply_to)];
                }
                // Alg. 3 line 2 (ust ← max(ust, snapshot)) happens inside
                // the view, against the shared frontier.
                match self.view.serve_slice(tx, snapshot, keys, reply_to) {
                    Ok(env) => vec![env],
                    Err(_) => vec![self.serve_slice(tx, snapshot, keys, reply_to)],
                }
            }
            Mode::Bpr => {
                if self.installed_watermark() >= snapshot {
                    vec![self.serve_slice(tx, snapshot, keys, reply_to)]
                } else {
                    self.stats.blocked_reads += 1;
                    self.blocked.push(BlockedRead {
                        tx,
                        snapshot,
                        keys: keys.to_vec(),
                        reply_to,
                        blocked_at: now,
                    });
                    Vec::new()
                }
            }
        }
    }

    /// Serves a slice read from the store on the server loop (Alg. 3
    /// lines 3–8): freshest version within the snapshot per key. Used by
    /// BPR (whose reads may park first) and as the authoritative fallback
    /// when a view read is rejected below `S_old` — the loop serializes
    /// with its own GC, so no guard is needed here.
    pub(super) fn serve_slice(
        &mut self,
        tx: TxId,
        snapshot: Timestamp,
        keys: &[Key],
        reply_to: ServerId,
    ) -> Envelope {
        self.stats.slice_reads += 1;
        self.stats.keys_read += keys.len() as u64;
        let results: Vec<ReadResult> = keys
            .iter()
            .map(|&key| ReadResult {
                key,
                version: self.store.read_at(key, snapshot),
            })
            .collect();
        Envelope::new(
            self.id,
            reply_to,
            Msg::ReadSliceResp {
                tx,
                partition: self.id.partition,
                results,
            },
        )
    }

    /// Re-examines blocked reads after the installed watermark advanced
    /// (BPR); returns the responses for reads that can now be served.
    pub(super) fn drain_blocked(&mut self, now: u64) -> Vec<Envelope> {
        if self.blocked.is_empty() {
            return Vec::new();
        }
        let watermark = self.installed_watermark();
        let mut out = Vec::new();
        let mut still_blocked = Vec::with_capacity(self.blocked.len());
        for b in std::mem::take(&mut self.blocked) {
            if b.snapshot <= watermark {
                let waited = now.saturating_sub(b.blocked_at);
                self.stats.blocked_micros_total += waited;
                self.stats.blocked_micros_max = self.stats.blocked_micros_max.max(waited);
                out.push(self.serve_slice(b.tx, b.snapshot, &b.keys, b.reply_to));
            } else {
                still_blocked.push(b);
            }
        }
        self.blocked = still_blocked;
        out
    }

    /// `PrepareReq` (Alg. 3 lines 9–14): propose a commit timestamp that
    /// exceeds the transaction snapshot, the client's last commit (`ht`)
    /// and everything this server has seen (`HLC`).
    ///
    /// The loop path is the two pipeline halves run back to back: stage
    /// (UST bump, write-set copy, shard partitioning — what the threaded
    /// runtime's write pool does off-loop) then admit (HLC stamp,
    /// `Prepared` insert — loop-owned everywhere).
    pub(super) fn on_prepare_req(
        &mut self,
        tx: TxId,
        snapshot: Timestamp,
        ht: Timestamp,
        writes: &[WriteSetEntry],
        reply_to: ServerId,
        src_dc: DcId,
    ) -> Vec<Envelope> {
        let staged = self.pipeline.stage_prepare(snapshot, writes);
        self.admit_prepared(tx, staged, ht, reply_to, src_dc)
    }

    /// Loop-owned half of a prepare (Alg. 3 lines 10 & 12): stamps the
    /// proposal strictly above `ht`, the staged UST and the previous HLC
    /// value, and at least the physical clock, then queues the
    /// transaction as prepared. The staged half comes from
    /// [`CommitPipeline::stage_prepare`](super::CommitPipeline::stage_prepare),
    /// on this loop or on a write-pool thread.
    pub fn admit_prepared(
        &mut self,
        tx: TxId,
        staged: super::StagedPrepare,
        ht: Timestamp,
        reply_to: ServerId,
        src_dc: DcId,
    ) -> Vec<Envelope> {
        self.stats.prepares += 1;
        let floor = ht.max(staged.ust);
        let pt = self.hlc.now_after(&self.clock, floor);
        self.root_state.publish_hlc(pt);
        self.prepared.insert(
            tx,
            PreparedTx {
                pt,
                writes: staged.writes,
                src: src_dc,
            },
        );
        self.prepared_index.insert((pt, tx));
        vec![Envelope::new(
            self.id,
            reply_to,
            Msg::PrepareResp {
                tx,
                partition: self.id.partition,
                proposed: pt,
            },
        )]
    }

    /// `CommitTx` (Alg. 3 lines 15–19): move the transaction from the
    /// prepared to the committed queue under its final commit timestamp.
    pub(super) fn on_commit_tx(&mut self, tx: TxId, ct: Timestamp) -> Vec<Envelope> {
        // Alg. 3 line 16: HLC ← max(HLC, ct, Clock).
        self.hlc.observe(&self.clock, ct);
        self.root_state.publish_hlc(ct);
        let Some(p) = self.prepared.remove(&tx) else {
            debug_assert!(false, "commit for unprepared transaction {tx}");
            return Vec::new();
        };
        self.prepared_index.remove(&(p.pt, tx));
        debug_assert!(ct >= p.pt, "commit time below proposal");
        self.committed.insert(
            (ct, tx),
            CommittedTx {
                writes: p.writes,
                src: p.src,
            },
        );
        Vec::new()
    }

    /// Lowest proposed timestamp among prepared transactions, if any.
    pub(crate) fn min_prepared(&self) -> Option<Timestamp> {
        self.prepared_index.iter().next().map(|(pt, _)| *pt)
    }
}
