//! The PaRiS partition server `p_n^m`: a sans-I/O state machine.
//!
//! A [`Server`] implements every server-side role of the paper:
//!
//! * **transaction coordinator** (Alg. 2): snapshot assignment, parallel
//!   read fan-out, 2PC commit;
//! * **transaction cohort** (Alg. 3): slice reads, prepare, commit;
//! * **replication** (Alg. 4): applying committed transactions in commit
//!   order, pushing them to peer replicas, heartbeats;
//! * **stabilization** (Alg. 4 lines 34–38): the UST gossip over the
//!   intra-DC tree and the inter-DC root exchange, plus the GC horizon.
//!
//! The state machine is driven entirely through [`Server::handle`] and the
//! `on_*_tick` timer entry points; every call returns the envelopes to
//! send. The same code runs under the deterministic simulator and the
//! threaded runtime, in PaRiS or BPR mode.

mod cohort;
mod coordinator;
mod pipeline;
mod replication;
mod report_table;
mod root_state;
mod roots_table;
mod stabilization;
mod tx_table;

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use paris_clock::{Hlc, PhysicalClock};
use paris_proto::{Envelope, Msg, ReadResult};
use paris_storage::{
    DurableConfig, DurableEngine, Engine, MemEngine, RecoveryInfo, StableFrontier,
};
use paris_types::{ClientId, DcId, Mode, PartitionId, ServerId, Timestamp, TxId, WriteSetEntry};

use crate::read_view::{ReadView, ReadViewStats};
use crate::topology::Topology;

pub use pipeline::{CommitPipeline, LaneGuard, PipelineStats, StagedPrepare};
pub use root_state::RootState;

pub(crate) use report_table::ReportTable;
pub(crate) use roots_table::RootsTable;
pub(crate) use tx_table::TxTable;

/// Coordinator-side state of one running transaction (the paper's
/// `TX[id_T]`, Alg. 2 line 4).
#[derive(Debug)]
pub(crate) struct TxContext {
    /// Snapshot assigned at start.
    pub snapshot: Timestamp,
    /// The client that owns the transaction.
    pub client: ClientId,
    /// The operation currently in flight, if any (clients are sequential,
    /// so at most one).
    pub pending: Option<PendingOp>,
    /// Simulated/real time at which the transaction started (staleness
    /// accounting).
    pub started_at: u64,
}

/// An in-flight fan-out operation at the coordinator.
#[derive(Debug)]
pub(crate) enum PendingOp {
    /// A parallel read awaiting slice responses (Alg. 2 lines 10–15).
    Read {
        /// Partitions not yet heard from.
        awaiting: HashSet<PartitionId>,
        /// Accumulated results.
        results: Vec<ReadResult>,
    },
    /// A 2PC awaiting prepare responses (Alg. 2 lines 21–25).
    Commit {
        /// Partitions not yet heard from.
        awaiting: HashSet<PartitionId>,
        /// Cohort servers contacted (phase-2 targets).
        participants: Vec<ServerId>,
        /// Max proposed timestamp so far (Alg. 2 line 26).
        max_proposed: Timestamp,
    },
}

/// A transaction in the prepared queue (Alg. 3 line 13).
#[derive(Debug, Clone)]
pub(crate) struct PreparedTx {
    /// Proposed commit timestamp.
    pub pt: Timestamp,
    /// Writes destined for this partition.
    pub writes: Vec<WriteSetEntry>,
    /// DC where the transaction committed (version source).
    pub src: DcId,
}

/// A transaction in the committed queue awaiting apply (Alg. 3 line 19).
#[derive(Debug, Clone)]
pub(crate) struct CommittedTx {
    /// Writes destined for this partition.
    pub writes: Vec<WriteSetEntry>,
    /// DC where the transaction committed.
    pub src: DcId,
}

/// A read parked by the BPR baseline until the partition has installed the
/// snapshot (§V, "BPR").
#[derive(Debug)]
pub(crate) struct BlockedRead {
    pub tx: TxId,
    pub snapshot: Timestamp,
    pub keys: Vec<paris_types::Key>,
    pub reply_to: ServerId,
    pub blocked_at: u64,
}

/// Counters exposed by a server, aggregated by the measurement harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Messages handled, any kind.
    pub msgs_handled: u64,
    /// Update transactions committed with this server as coordinator.
    pub txs_coordinated: u64,
    /// Slice reads served (including after unblocking).
    pub slice_reads: u64,
    /// Keys returned by slice reads.
    pub keys_read: u64,
    /// Prepares handled.
    pub prepares: u64,
    /// Transactions applied locally (as 2PC participant).
    pub applied_local: u64,
    /// Transactions applied from remote replication.
    pub applied_remote: u64,
    /// Replication batches sent.
    pub replicate_batches: u64,
    /// Heartbeats sent.
    pub heartbeats: u64,
    /// Logical frames received folded inside coalesced
    /// `ReplicateBatch`/`GossipDigest` messages (each such message counts
    /// its `frames`, so `coalesced_frames - messages` is the wire saving).
    pub coalesced_frames: u64,
    /// Reads that had to block (BPR only).
    pub blocked_reads: u64,
    /// Total microseconds reads spent blocked (BPR only).
    pub blocked_micros_total: u64,
    /// Maximum single blocking duration (BPR only).
    pub blocked_micros_max: u64,
    /// Versions removed by GC.
    pub gc_removed: u64,
    /// Coalesced `GossipDigest` messages folded off the server loop by
    /// the read pool (via [`crate::ReadView::serve_gossip_digest`]);
    /// proves digest handling actually moved off the loop.
    pub pooled_gossip_digests: u64,
}

/// Timestamped protocol events, recorded when
/// [`ServerOptions::record_events`] is set; the benchmark harness derives
/// update-visibility latency (Fig. 4) and staleness from these.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    /// Coordinator decided commit `(tx, ct)` at time `now`.
    pub commits: Vec<(TxId, Timestamp, u64)>,
    /// A version of transaction `tx` with commit time `ct` was applied on
    /// this server at time `now`.
    pub applies: Vec<(TxId, Timestamp, u64)>,
    /// This server's UST advanced to `ust` at time `now`.
    pub ust_advances: Vec<(Timestamp, u64)>,
}

/// Construction options for a [`Server`].
pub struct ServerOptions {
    /// The server's identity.
    pub id: ServerId,
    /// Cluster topology (shared).
    pub topology: std::sync::Arc<Topology>,
    /// Physical clock source (possibly skewed).
    pub clock: Box<dyn PhysicalClock + Send>,
    /// Protocol variant.
    pub mode: Mode,
    /// Record the [`EventLog`] (costs memory; benches enable it only for
    /// visibility runs).
    pub record_events: bool,
}

/// Concurrency-sizing knobs of a [`Server`]'s shared storage structures.
/// [`Server::new`] uses the defaults; runtimes that know the host's
/// parallelism pass explicit values through [`Server::with_tuning`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerTuning {
    /// Chain-shard count of the [`MemEngine`] (`None` → the store's
    /// default of 16). More shards reduce reader/writer lock overlap.
    pub store_shards: Option<usize>,
    /// Atomic read-slot count of the [`StableFrontier`]'s in-flight
    /// registry (`None` → the frontier's default of 64; `Some(0)`
    /// disables the slots so every read admission takes the mutexed
    /// fallback — the pre-slot behavior, kept measurable for benches).
    pub read_slots: Option<usize>,
    /// Apply-lane count of the [`CommitPipeline`] (`None` → one lane per
    /// store shard — maximal write parallelism). Clamped to
    /// `1..=store_shards`; more lanes than shards buys nothing.
    pub write_lanes: Option<usize>,
    /// Durable-storage configuration. `None` (the default) keeps the
    /// pure in-memory [`MemEngine`]; `Some` wraps it in a
    /// [`DurableEngine`] — write-ahead log plus stable-prefix checkpoints
    /// under `durable.dir` — and recovers any state already there at
    /// construction ([`Server::recovery`] reports what came back).
    /// Runtimes append a per-server subdirectory, so one base directory
    /// serves a whole cluster.
    pub durable: Option<DurableConfig>,
}

/// The PaRiS partition server state machine. See the module docs.
pub struct Server {
    pub(crate) id: ServerId,
    pub(crate) topo: std::sync::Arc<Topology>,
    pub(crate) mode: Mode,
    pub(crate) clock: Box<dyn PhysicalClock + Send>,
    pub(crate) hlc: Hlc,
    /// The storage engine — in-memory or durable — shared with every
    /// [`ReadView`] and the [`CommitPipeline`].
    pub(crate) store: std::sync::Arc<dyn Engine>,
    /// Published stable timestamps (`ust_n^m`, `S_old`) and the in-flight
    /// read registry, shared with every [`ReadView`].
    pub(crate) frontier: std::sync::Arc<StableFrontier>,
    /// Read-path counters shared with every [`ReadView`].
    pub(crate) view_stats: std::sync::Arc<ReadViewStats>,
    /// The per-shard commit pipeline, shared with the runtimes' write
    /// pools; the loop itself stages prepares and applies replication
    /// batches through it, so every backend exercises one write path.
    pub(crate) pipeline: std::sync::Arc<CommitPipeline>,
    /// Loop-owned root state (HLC, installed watermark), published for
    /// lock-free observation off the loop.
    pub(crate) root_state: std::sync::Arc<RootState>,
    /// The server's own cached view (the loop-served read path uses it on
    /// every slice read; cloning three `Arc`s per read would be waste).
    pub(crate) view: ReadView,
    /// Version vector `VV_n^m`: one entry per replica DC of this partition
    /// (keyed by DC for clarity; own DC included).
    pub(crate) vv: BTreeMap<DcId, Timestamp>,
    /// Coordinator contexts + transaction-id sequence, shared with every
    /// [`ReadView`] so snapshot assignment (Alg. 2 lines 1–5) can run on
    /// pool threads (see [`tx_table`]).
    pub(crate) tx_table: std::sync::Arc<TxTable>,
    /// Prepared queue (`Prepared_n^m`), with a sorted index for `min pt`.
    pub(crate) prepared: HashMap<TxId, PreparedTx>,
    pub(crate) prepared_index: BTreeSet<(Timestamp, TxId)>,
    /// Committed queue (`Committed_n^m`), ordered by (ct, tx).
    pub(crate) committed: BTreeMap<(Timestamp, TxId), CommittedTx>,
    /// BPR: reads blocked until `min(VV) ≥ snapshot`.
    pub(crate) blocked: Vec<BlockedRead>,
    /// Stabilization: freshest report per tree child partition, shared
    /// with every [`ReadView`] so unbatched `GstReport`s can be folded
    /// off the server loop (see [`report_table`]).
    pub(crate) child_reports: std::sync::Arc<ReportTable>,
    /// Root only: latest (gst, oldest_active) per DC, shared with every
    /// [`ReadView`] so coalesced `GossipDigest`s can be folded off the
    /// server loop (see [`roots_table`]).
    pub(crate) dc_roots: std::sync::Arc<RootsTable>,
    /// What the durable engine recovered at construction, if durability
    /// is on ([`RecoveryInfo::default`]-equal when the directory was
    /// empty).
    pub(crate) recovery: Option<RecoveryInfo>,
    /// DCs this server currently considers unreachable (fed by the
    /// runtime's failure detector; §III-C availability).
    pub(crate) unreachable: HashSet<DcId>,
    /// Statistics.
    pub(crate) stats: ServerStats,
    /// Optional event log.
    pub(crate) events: Option<EventLog>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("id", &self.id)
            .field("mode", &self.mode)
            .field("ust", &self.frontier.ust())
            .field("vv", &self.vv)
            .field("prepared", &self.prepared.len())
            .field("committed", &self.committed.len())
            .field("blocked", &self.blocked.len())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Creates a server with default [`ServerTuning`].
    ///
    /// # Panics
    ///
    /// Panics if the topology does not place this server's partition in
    /// its DC (the server would not exist in the deployment).
    pub fn new(options: ServerOptions) -> Self {
        Server::with_tuning(options, ServerTuning::default())
    }

    /// Creates a server with explicit storage-concurrency sizing (the
    /// runtimes derive it from the host's parallelism).
    ///
    /// # Panics
    ///
    /// Panics if the topology does not place this server's partition in
    /// its DC (the server would not exist in the deployment), if
    /// `tuning.store_shards` is `Some(0)`, or if `tuning.durable` is set
    /// and the durable store cannot be opened (use
    /// [`Server::try_with_tuning`] to handle that case).
    pub fn with_tuning(options: ServerOptions, tuning: ServerTuning) -> Self {
        match Server::try_with_tuning(options, tuning) {
            Ok(server) => server,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a server with explicit tuning, surfacing durable-storage
    /// open/recovery failures as [`paris_types::Error::Storage`] instead
    /// of panicking.
    ///
    /// When `tuning.durable` is set, construction is also **recovery**:
    /// the newest intact checkpoint is loaded, the WAL suffix replayed
    /// (truncating a torn tail), and the server's version vector, HLC
    /// floor, stable frontier and published root state are re-seeded so
    /// the state machine resumes exactly where the log ends. What came
    /// back is reported by [`Server::recovery`].
    ///
    /// # Panics
    ///
    /// Panics if the topology does not place this server's partition in
    /// its DC, or if `tuning.store_shards` is `Some(0)`.
    pub fn try_with_tuning(
        options: ServerOptions,
        tuning: ServerTuning,
    ) -> Result<Self, paris_types::Error> {
        let ServerOptions {
            id,
            topology,
            clock,
            mode,
            record_events,
        } = options;
        assert!(
            topology.is_replicated_at(id.partition, id.dc),
            "server {id} is not part of the placement"
        );
        let mut vv: BTreeMap<DcId, Timestamp> = topology
            .replicas(id.partition)
            .into_iter()
            .map(|dc| (dc, Timestamp::ZERO))
            .collect();
        let shards = tuning.store_shards.unwrap_or(paris_storage::DEFAULT_SHARDS);
        let (store, recovery): (std::sync::Arc<dyn Engine>, Option<RecoveryInfo>) =
            match tuning.durable {
                Some(cfg) => {
                    let (engine, info) = DurableEngine::open(cfg, shards)?;
                    (std::sync::Arc::new(engine), Some(info))
                }
                None => (std::sync::Arc::new(MemEngine::with_shards(shards)), None),
            };
        let frontier = std::sync::Arc::new(match tuning.read_slots {
            Some(slots) => StableFrontier::with_slots(slots),
            None => StableFrontier::new(),
        });
        let view_stats = std::sync::Arc::new(ReadViewStats::default());
        let pipeline = std::sync::Arc::new(CommitPipeline::new(
            std::sync::Arc::clone(&store),
            std::sync::Arc::clone(&frontier),
            tuning.write_lanes.unwrap_or_else(|| store.shard_count()),
        ));
        let root_state = std::sync::Arc::new(RootState::default());
        let tx_table = std::sync::Arc::new(TxTable::default());
        let child_reports = std::sync::Arc::new(ReportTable::default());
        let dc_roots = std::sync::Arc::new(RootsTable::default());
        let mut hlc = Hlc::new();
        if let Some(info) = &recovery {
            // Resume where the log ends: recovered versions were committed
            // and acknowledged, so the replication watermark per source DC
            // restarts at the newest recovered update time — peers resend
            // watermarks at or above it, keeping the monotonicity invariant.
            for &(src, ut) in &info.max_ut_by_src {
                if let Some(entry) = vv.get_mut(&src) {
                    *entry = ut;
                }
            }
            // The stable frontier the checkpoint froze is still valid:
            // every DC had installed `≤ ust` before the crash, and GC may
            // already have trimmed up to `s_old`.
            frontier.advance_ust(info.ust);
            frontier.advance_s_old(info.s_old);
            root_state.publish_hlc(info.max_recovered());
            root_state.publish_watermark(vv.values().copied().min().unwrap_or(Timestamp::ZERO));
            // New commit timestamps must sort after everything persisted.
            hlc.observe(&clock, info.max_recovered());
        }
        let view = ReadView::new(
            id,
            mode,
            std::sync::Arc::clone(&store),
            std::sync::Arc::clone(&frontier),
            std::sync::Arc::clone(&view_stats),
            std::sync::Arc::clone(&tx_table),
            std::sync::Arc::clone(&child_reports),
            std::sync::Arc::clone(&dc_roots),
        );
        let mut server = Server {
            id,
            topo: topology,
            mode,
            clock,
            hlc,
            store,
            frontier,
            view_stats,
            pipeline,
            root_state,
            view,
            vv,
            tx_table,
            prepared: HashMap::new(),
            prepared_index: BTreeSet::new(),
            committed: BTreeMap::new(),
            blocked: Vec::new(),
            child_reports,
            dc_roots,
            recovery,
            unreachable: HashSet::new(),
            stats: ServerStats::default(),
            events: record_events.then(EventLog::default),
        };
        // The stabilization aggregate must under-approximate unreported
        // children (see `stabilization`).
        server.seed_child_reports();
        Ok(server)
    }

    /// The server's identity.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The protocol variant this server runs.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Current universal stable time.
    pub fn ust(&self) -> Timestamp {
        self.frontier.ust()
    }

    /// Current GC horizon.
    pub fn s_old(&self) -> Timestamp {
        self.frontier.s_old()
    }

    /// The version vector (per replica DC).
    pub fn version_vector(&self) -> &BTreeMap<DcId, Timestamp> {
        &self.vv
    }

    /// Statistics counters: the state machine's own plus the shared
    /// read-view counters (slice reads and gossip digests may be served
    /// off-loop).
    pub fn stats(&self) -> ServerStats {
        let mut stats = self.stats;
        stats.slice_reads += self.view_stats.slice_reads();
        stats.keys_read += self.view_stats.keys_read();
        stats.pooled_gossip_digests += self.view_stats.gossip_digests();
        stats.coalesced_frames += self.view_stats.digest_frames();
        stats
    }

    /// The shared per-shard commit pipeline: the write-path counterpart
    /// of [`Server::read_view`]. The threaded runtime hands it to its
    /// write-thread pool (prepare staging and replication apply run
    /// off-loop through its lanes); the deterministic backends exercise
    /// the same path synchronously.
    pub fn commit_pipeline(&self) -> std::sync::Arc<CommitPipeline> {
        std::sync::Arc::clone(&self.pipeline)
    }

    /// The published loop-owned root state (HLC, installed watermark):
    /// lock-free reads of what only the server loop may mutate.
    pub fn root_state(&self) -> std::sync::Arc<RootState> {
        std::sync::Arc::clone(&self.root_state)
    }

    /// A cloneable handle serving Algorithm 3 snapshot reads from this
    /// server's published state, off the server loop. All views of one
    /// server share its store, stable frontier and read counters; the
    /// threaded runtime hands them to its read-thread pool, while the
    /// deterministic backends exercise the same path synchronously.
    pub fn read_view(&self) -> ReadView {
        self.view.clone()
    }

    /// The recorded event log, if enabled.
    pub fn events(&self) -> Option<&EventLog> {
        self.events.as_ref()
    }

    /// Read-only access to the storage engine (checker, tests).
    pub fn store(&self) -> &dyn Engine {
        &*self.store
    }

    /// What the durable engine recovered at construction: `Some` iff
    /// [`ServerTuning::durable`] was set (an empty data directory yields
    /// a default-valued [`RecoveryInfo`]).
    pub fn recovery(&self) -> Option<&RecoveryInfo> {
        self.recovery.as_ref()
    }

    /// Durable-engine counters (WAL bytes, checkpoints, …), if
    /// durability is on.
    pub fn durable_stats(&self) -> Option<paris_storage::DurableStats> {
        self.store.durable_stats()
    }

    /// Number of currently open coordinator contexts.
    pub fn open_transactions(&self) -> usize {
        self.tx_table.len()
    }

    /// Number of currently blocked reads (BPR).
    pub fn blocked_reads_now(&self) -> usize {
        self.blocked.len()
    }

    /// Handles one incoming envelope at time `now` (microseconds on the
    /// substrate's clock), returning the envelopes to send.
    pub fn handle(&mut self, env: &Envelope, now: u64) -> Vec<Envelope> {
        self.stats.msgs_handled += 1;
        match &env.msg {
            // Coordinator role.
            Msg::StartTxReq { client_ust } => self.on_start_tx(env, *client_ust, now),
            Msg::ReadReq { tx, keys } => self.on_read_req(env, *tx, keys, now),
            Msg::CommitReq { tx, hwt, writes } => self.on_commit_req(env, *tx, *hwt, writes, now),
            Msg::ReadSliceResp {
                tx,
                partition,
                results,
            } => self.on_read_slice_resp(*tx, *partition, results, now),
            Msg::PrepareResp {
                tx,
                partition,
                proposed,
            } => self.on_prepare_resp(*tx, *partition, *proposed, now),

            // Cohort role.
            Msg::ReadSliceReq {
                tx,
                snapshot,
                keys,
                reply_to,
            } => self.on_read_slice_req(*tx, *snapshot, keys, *reply_to, now),
            Msg::PrepareReq {
                tx,
                snapshot,
                ht,
                writes,
                reply_to,
                src_dc,
            } => self.on_prepare_req(*tx, *snapshot, *ht, writes, *reply_to, *src_dc),
            Msg::CommitTx { tx, ct } => self.on_commit_tx(*tx, *ct),

            // Replication.
            Msg::Replicate {
                partition,
                txs,
                watermark,
            } => self.on_replicate(env, *partition, txs, *watermark, now),
            Msg::Heartbeat {
                partition,
                watermark,
            } => self.on_heartbeat(env, *partition, *watermark, now),
            Msg::ReplicateBatch {
                partition,
                txs,
                watermark,
                frames,
            } => self.on_replicate_batch(env, *partition, txs, *watermark, *frames, now),

            // Stabilization.
            Msg::GstReport {
                partition,
                mins,
                oldest_active,
            } => self.on_gst_report(*partition, mins, *oldest_active),
            Msg::RootGst {
                dc,
                gst,
                oldest_active,
            } => self.on_root_gst(*dc, *gst, *oldest_active),
            Msg::UstBroadcast { ust, s_old } => self.on_ust_broadcast(*ust, *s_old, now),
            Msg::GossipDigest {
                reports,
                roots,
                ust,
                frames,
            } => self.on_gossip_digest(reports, roots, *ust, *frames, now),

            // Client-bound messages never arrive at a server.
            Msg::StartTxResp { .. }
            | Msg::ReadResp { .. }
            | Msg::CommitResp { .. }
            | Msg::OpFailed { .. } => {
                debug_assert!(false, "client-bound message delivered to server");
                Vec::new()
            }
        }
    }

    /// Marks a remote DC reachable or unreachable. Fed by the runtime's
    /// failure detector; the coordinator routes around unreachable DCs
    /// (§III-C: any replica can serve any operation) and aborts
    /// operations whose target partition has no reachable replica.
    pub fn set_dc_reachability(&mut self, dc: DcId, reachable: bool) {
        if reachable {
            self.unreachable.remove(&dc);
        } else if dc != self.id.dc {
            self.unreachable.insert(dc);
        }
    }

    /// DCs currently considered unreachable.
    pub fn unreachable_dcs(&self) -> &HashSet<DcId> {
        &self.unreachable
    }

    /// Drops coordinator contexts older than `timeout_micros` (§III-C:
    /// "contexts corresponding to transactions of failed clients are
    /// cleaned in the background after a timeout"). Returns the number of
    /// contexts dropped. Call with a timeout far above any legitimate
    /// transaction duration.
    pub fn cleanup_stale_contexts(&mut self, now: u64, timeout_micros: u64) -> usize {
        self.tx_table.expire(now, timeout_micros)
    }

    /// Runs periodic garbage collection (the paper's background GC,
    /// §IV-B): trims every version chain to the horizon `S_old` computed by
    /// the stabilization protocol, further bounded by the oldest snapshot
    /// of any in-flight off-loop read (so the read pool never loses a
    /// version it is entitled to). Returns versions removed.
    ///
    /// With durability on, the same tick drives checkpointing: the engine
    /// freezes the ≤ UST stable prefix when its interval has elapsed
    /// (`now` is the substrate clock in microseconds), and GC doubles as
    /// the WAL-truncation point — closed segments fully covered by both
    /// the last checkpoint and the GC horizon are deleted.
    pub fn on_gc_tick(&mut self, now: u64) -> usize {
        self.store.maybe_checkpoint(self.frontier.ust(), now);
        let removed = self.store.gc(self.frontier.gc_horizon());
        self.stats.gc_removed += removed as u64;
        removed
    }

    /// The minimum entry of the version vector: everything up to this
    /// timestamp has been installed on this partition (local + remote).
    pub(crate) fn installed_watermark(&self) -> Timestamp {
        self.vv.values().copied().min().unwrap_or(Timestamp::ZERO)
    }

    /// Records a UST advance in the event log.
    pub(crate) fn log_ust(&mut self, ust: Timestamp, now: u64) {
        if let Some(log) = self.events.as_mut() {
            log.ust_advances.push((ust, now));
        }
    }
}
