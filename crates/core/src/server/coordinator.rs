//! Transaction-coordinator role (paper Algorithm 2).
//!
//! Coordinator state lives in the shared [`TxTable`](super::TxTable):
//! snapshot assignment (`StartTxReq`) may execute on read-pool threads
//! through [`ReadView::serve_start_tx`](crate::ReadView::serve_start_tx),
//! while the fan-out bookkeeping below still runs exclusively on the
//! server loop. Each handler takes the table lock once, for a few map
//! operations.

use std::collections::{BTreeMap, HashSet};

use paris_proto::{Envelope, Msg, ReadResult};
use paris_types::{Key, Mode, PartitionId, Timestamp, TxId, WriteSetEntry};

use super::{PendingOp, Server};

impl Server {
    /// `StartTxReq` (Alg. 2 lines 1–5): assign a snapshot and a fresh
    /// transaction id.
    ///
    /// * PaRiS: `ust ← max(ust, ust_c)`, snapshot = `ust` — a stable
    ///   snapshot installed everywhere, hence non-blocking reads. The
    ///   assignment goes through the shared table, atomically with the
    ///   context registration, exactly as the pooled path does.
    /// * BPR: snapshot = `max(ust_c, HLC)` — fresh, but reads must block
    ///   until the serving partition installs it (§V). The HLC belongs to
    ///   the loop, so BPR starts are never pooled.
    pub(super) fn on_start_tx(
        &mut self,
        env: &Envelope,
        client_ust: Timestamp,
        now: u64,
    ) -> Vec<Envelope> {
        let client = match env.src {
            paris_proto::Endpoint::Client(c) => c,
            paris_proto::Endpoint::Server(_) => {
                debug_assert!(false, "StartTxReq from a server");
                return Vec::new();
            }
        };
        let (tx, snapshot) = match self.mode {
            Mode::Paris => {
                self.tx_table
                    .begin_paris(self.id, client, &self.frontier, client_ust, now)
            }
            Mode::Bpr => {
                let snapshot = client_ust.max(self.hlc.peek(&self.clock));
                let tx = self
                    .tx_table
                    .begin_with_snapshot(self.id, client, snapshot, now);
                (tx, snapshot)
            }
        };
        vec![Envelope::new(
            self.id,
            client,
            Msg::StartTxResp { tx, snapshot },
        )]
    }

    /// `ReadReq` (Alg. 2 lines 6–16): fan the keys out to one replica per
    /// partition, local when possible, otherwise the preferred remote DC.
    pub(super) fn on_read_req(
        &mut self,
        env: &Envelope,
        tx: TxId,
        keys: &[Key],
        _now: u64,
    ) -> Vec<Envelope> {
        let mut ctxs = self.tx_table.lock();
        let Some(ctx) = ctxs.get(&tx) else {
            // Unknown transaction (e.g. coordinator restarted): return an
            // empty result so the client does not hang.
            return vec![Envelope::new(
                self.id,
                env.src,
                Msg::ReadResp {
                    tx,
                    results: Vec::new(),
                },
            )];
        };
        debug_assert!(ctx.pending.is_none(), "client issued overlapping ops");
        let snapshot = ctx.snapshot;
        let client = ctx.client;

        // Group keys by partition (Alg. 2 line 9).
        let mut by_partition: BTreeMap<PartitionId, Vec<Key>> = BTreeMap::new();
        for &k in keys {
            by_partition
                .entry(self.topo.partition_of(k))
                .or_default()
                .push(k);
        }
        // Resolve a reachable replica per partition; if any partition has
        // none, the operation cannot complete (§III-C) and the
        // transaction aborts.
        let mut targets = Vec::with_capacity(by_partition.len());
        for partition in by_partition.keys() {
            match self
                .topo
                .reachable_target_dc(*partition, self.id.dc, &self.unreachable)
            {
                Some(dc) => targets.push(paris_types::ServerId::new(dc, *partition)),
                None => {
                    ctxs.remove(&tx);
                    return vec![Envelope::new(self.id, client, Msg::OpFailed { tx })];
                }
            }
        }

        let awaiting: HashSet<PartitionId> = by_partition.keys().copied().collect();
        ctxs.get_mut(&tx).expect("context checked above").pending = Some(PendingOp::Read {
            awaiting,
            results: Vec::new(),
        });

        // One slice request per involved partition, in parallel
        // (Alg. 2 lines 10–15).
        by_partition
            .into_values()
            .zip(targets)
            .map(|(keys, target)| {
                Envelope::new(
                    self.id,
                    target,
                    Msg::ReadSliceReq {
                        tx,
                        snapshot,
                        keys,
                        reply_to: self.id,
                    },
                )
            })
            .collect()
    }

    /// `ReadSliceResp`: accumulate; when all partitions answered, reply to
    /// the client (Alg. 2 line 16).
    pub(super) fn on_read_slice_resp(
        &mut self,
        tx: TxId,
        partition: PartitionId,
        results: &[ReadResult],
        _now: u64,
    ) -> Vec<Envelope> {
        let mut ctxs = self.tx_table.lock();
        let Some(ctx) = ctxs.get_mut(&tx) else {
            return Vec::new(); // stale response for a finished transaction
        };
        let Some(PendingOp::Read {
            awaiting,
            results: acc,
        }) = ctx.pending.as_mut()
        else {
            return Vec::new();
        };
        if !awaiting.remove(&partition) {
            return Vec::new(); // duplicate
        }
        acc.extend_from_slice(results);
        if !awaiting.is_empty() {
            return Vec::new();
        }
        let results = match ctx.pending.take() {
            Some(PendingOp::Read { results, .. }) => results,
            _ => unreachable!("checked above"),
        };
        vec![Envelope::new(
            self.id,
            ctx.client,
            Msg::ReadResp { tx, results },
        )]
    }

    /// `CommitReq` (Alg. 2 lines 17–25): first phase of 2PC.
    ///
    /// Read-only transactions (empty write set) are finalized immediately:
    /// the context is dropped — releasing its snapshot from the GC
    /// aggregate — and the client gets `ct = 0`.
    pub(super) fn on_commit_req(
        &mut self,
        env: &Envelope,
        tx: TxId,
        hwt: Timestamp,
        writes: &[WriteSetEntry],
        _now: u64,
    ) -> Vec<Envelope> {
        let mut ctxs = self.tx_table.lock();
        let Some(ctx) = ctxs.get(&tx) else {
            return vec![Envelope::new(
                self.id,
                env.src,
                Msg::CommitResp {
                    tx,
                    ct: Timestamp::ZERO,
                },
            )];
        };
        debug_assert!(ctx.pending.is_none(), "client issued overlapping ops");

        // ht: the max timestamp seen by the client (Alg. 2 line 19).
        let snapshot = ctx.snapshot;
        let client = ctx.client;
        if writes.is_empty() {
            ctxs.remove(&tx);
            return vec![Envelope::new(
                self.id,
                client,
                Msg::CommitResp {
                    tx,
                    ct: Timestamp::ZERO,
                },
            )];
        }
        let ht = snapshot.max(hwt);

        // Group writes by partition (Alg. 2 line 20).
        let mut by_partition: BTreeMap<PartitionId, Vec<WriteSetEntry>> = BTreeMap::new();
        for w in writes {
            by_partition
                .entry(self.topo.partition_of(w.key))
                .or_default()
                .push(w.clone());
        }
        // Resolve a reachable participant per partition, aborting if some
        // partition has no reachable replica (§III-C).
        let mut participants = Vec::with_capacity(by_partition.len());
        for partition in by_partition.keys() {
            match self
                .topo
                .reachable_target_dc(*partition, self.id.dc, &self.unreachable)
            {
                Some(dc) => participants.push(paris_types::ServerId::new(dc, *partition)),
                None => {
                    ctxs.remove(&tx);
                    return vec![Envelope::new(self.id, client, Msg::OpFailed { tx })];
                }
            }
        }
        let awaiting: HashSet<PartitionId> = by_partition.keys().copied().collect();
        ctxs.get_mut(&tx).expect("context checked above").pending = Some(PendingOp::Commit {
            awaiting,
            participants: participants.clone(),
            max_proposed: Timestamp::ZERO,
        });

        // PrepareReq to each involved partition (Alg. 2 lines 21–25).
        by_partition
            .into_values()
            .zip(participants)
            .map(|(writes, target)| {
                Envelope::new(
                    self.id,
                    target,
                    Msg::PrepareReq {
                        tx,
                        snapshot,
                        ht,
                        writes,
                        reply_to: self.id,
                        src_dc: self.id.dc,
                    },
                )
            })
            .collect()
    }

    /// `PrepareResp`: gather proposals; when all arrived, pick the max as
    /// commit time, notify cohorts and the client (Alg. 2 lines 26–29).
    pub(super) fn on_prepare_resp(
        &mut self,
        tx: TxId,
        partition: PartitionId,
        proposed: Timestamp,
        now: u64,
    ) -> Vec<Envelope> {
        let (participants, ct, client) = {
            let mut ctxs = self.tx_table.lock();
            let Some(ctx) = ctxs.get_mut(&tx) else {
                return Vec::new();
            };
            let Some(PendingOp::Commit {
                awaiting,
                max_proposed,
                ..
            }) = ctx.pending.as_mut()
            else {
                return Vec::new();
            };
            if !awaiting.remove(&partition) {
                return Vec::new(); // duplicate
            }
            *max_proposed = (*max_proposed).max(proposed);
            if !awaiting.is_empty() {
                return Vec::new();
            }

            let (participants, ct) = match ctx.pending.take() {
                Some(PendingOp::Commit {
                    participants,
                    max_proposed,
                    ..
                }) => (participants, max_proposed),
                _ => unreachable!("checked above"),
            };
            let client = ctx.client;
            ctxs.remove(&tx); // Alg. 2 line 28
            (participants, ct, client)
        };
        self.stats.txs_coordinated += 1;
        if let Some(log) = self.events.as_mut() {
            log.commits.push((tx, ct, now));
        }

        let mut out: Vec<Envelope> = participants
            .into_iter()
            .map(|p| Envelope::new(self.id, p, Msg::CommitTx { tx, ct }))
            .collect();
        out.push(Envelope::new(self.id, client, Msg::CommitResp { tx, ct }));
        out
    }

    /// The oldest snapshot among transactions coordinated here, or the
    /// current UST when idle — this server's contribution to the `S_old`
    /// aggregate (§IV-B, garbage collection).
    pub(crate) fn oldest_active_snapshot(&self) -> Timestamp {
        self.tx_table.oldest_active_snapshot(&self.frontier)
    }
}
