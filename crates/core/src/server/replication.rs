//! Applying committed transactions and replicating them to peer replicas
//! (paper Algorithm 4, lines 5–33).

use paris_proto::{Envelope, Msg, ReplicatedTx};
use paris_types::{DcId, Mode, PartitionId, Timestamp};

use super::Server;

impl Server {
    /// The apply/replicate tick (Alg. 4 lines 5–22), run every ∆R.
    ///
    /// Computes the *update bound* `ub`: `min(prepared) − 1` if
    /// transactions are preparing (their commit times may still land
    /// anywhere above their proposals), otherwise `max(Clock, HLC)`.
    /// Applies every committed transaction with `ct ≤ ub` in commit-time
    /// order, pushes the batch to peer replicas, and advances the local
    /// version clock to `ub`. With nothing to apply, sends a heartbeat so
    /// the UST keeps advancing in write-free periods.
    pub fn on_replicate_tick(&mut self, now: u64) -> Vec<Envelope> {
        let ub = match self.min_prepared() {
            // Future commits are ≥ the minimum proposal, hence > ub.
            Some(min_pt) => min_pt.pred(),
            // No proposals in flight: advance the HLC and use its new
            // value. The paper's `max(Clock, HLC)` (Alg. 4 line 7) is not
            // quite enough — if the physical clock stalls, a later prepare
            // may propose *exactly* that value, creating a version whose
            // timestamp equals an already-announced watermark and
            // violating Proposition 2. Ticking the HLC makes every future
            // proposal (`max(Clock, ht+1, HLC+1)`) strictly greater.
            None => self.hlc.now(&self.clock),
        };
        // The version clock never regresses (peek is monotonic and any new
        // proposal exceeds the HLC at its creation, but be defensive).
        let own = self.id.dc;
        let ub = ub.max(self.vv[&own]);

        // Collect committed transactions with ct ≤ ub, ascending (ct, tx).
        let mut batch: Vec<ReplicatedTx> = Vec::new();
        let ready: Vec<(Timestamp, paris_types::TxId)> = self
            .committed
            .range(
                ..=(
                    ub,
                    paris_types::TxId::new(
                        paris_types::ServerId::new(DcId(u16::MAX), PartitionId(u32::MAX)),
                        u64::MAX,
                    ),
                ),
            )
            .map(|(k, _)| *k)
            .collect();
        for key in ready {
            let (ct, tx) = key;
            let entry = self.committed.remove(&key).expect("collected above");
            for w in &entry.writes {
                self.store.apply(w.key, w.value.clone(), ct, tx, entry.src);
            }
            self.stats.applied_local += 1;
            if let Some(log) = self.events.as_mut() {
                log.applies.push((tx, ct, now));
            }
            batch.push(ReplicatedTx {
                tx,
                ct,
                src: entry.src,
                writes: entry.writes,
            });
        }

        // Advance the local version clock (Alg. 4 lines 18/20) and
        // publish the new installed watermark and HLC for lock-free
        // observers.
        self.vv.insert(own, ub);
        self.root_state.publish_hlc(ub);
        self.root_state
            .publish_watermark(self.installed_watermark());

        let peers = self.topo.peer_replicas(self.id);
        let mut out: Vec<Envelope> = Vec::with_capacity(peers.len() + 4);
        if batch.is_empty() {
            // Alg. 4 line 21: heartbeat keeps remote version clocks moving.
            self.stats.heartbeats += peers.len() as u64;
            for peer in peers {
                out.push(Envelope::new(
                    self.id,
                    peer,
                    Msg::Heartbeat {
                        partition: self.id.partition,
                        watermark: ub,
                    },
                ));
            }
        } else {
            self.stats.replicate_batches += 1;
            for peer in peers {
                out.push(Envelope::new(
                    self.id,
                    peer,
                    Msg::Replicate {
                        partition: self.id.partition,
                        txs: batch.clone(),
                        watermark: ub,
                    },
                ));
            }
        }

        // The local watermark moved: blocked BPR reads may now be servable.
        if self.mode == Mode::Bpr {
            out.extend(self.drain_blocked(now));
        }
        out
    }

    /// `Replicate` from a peer replica (Alg. 4 lines 23–30): apply the
    /// batch and advance that replica's version-vector entry to the
    /// sender's watermark.
    ///
    /// The loop path is the pipeline apply plus the loop-owned
    /// completion, run back to back — the same two halves the threaded
    /// runtime's write pool splits across threads.
    pub(super) fn on_replicate(
        &mut self,
        env: &Envelope,
        partition: PartitionId,
        txs: &[ReplicatedTx],
        watermark: Timestamp,
        now: u64,
    ) -> Vec<Envelope> {
        self.pipeline.apply_replicated(txs);
        self.note_remote_applied(env.src.dc(), partition, txs, watermark, 0, now)
    }

    /// Loop-owned completion of a replication apply (Alg. 4 lines 29–30
    /// plus accounting): counts the transactions, logs the applies, folds
    /// coalesced frames and — strictly *after* the batch's store writes
    /// have landed through
    /// [`CommitPipeline::apply_replicated`](super::CommitPipeline::apply_replicated)
    /// — advances the sender's version-vector entry to its watermark, so
    /// the installed watermark never announces a version that is not yet
    /// readable. Callers moving the apply off-loop (the runtimes' write
    /// pools) must keep all frames of one source on one worker: per-src
    /// FIFO is what makes the watermark argument hold.
    pub fn note_remote_applied(
        &mut self,
        from: DcId,
        partition: PartitionId,
        txs: &[ReplicatedTx],
        watermark: Timestamp,
        frames: u32,
        now: u64,
    ) -> Vec<Envelope> {
        debug_assert_eq!(partition, self.id.partition, "replication cross-partition");
        self.stats.coalesced_frames += u64::from(frames);
        for t in txs {
            self.stats.applied_remote += 1;
            if let Some(log) = self.events.as_mut() {
                log.applies.push((t.tx, t.ct, now));
            }
        }
        self.bump_replica_clock(from, watermark);
        if self.mode == Mode::Bpr {
            self.drain_blocked(now)
        } else {
            Vec::new()
        }
    }

    /// `ReplicateBatch` from the coalescing layer: several replication
    /// frames from the same peer folded into one message. The fold
    /// preserves ascending `ct` order and keeps the newest watermark, so a
    /// single [`Server::on_replicate`] pass applies the whole window.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn on_replicate_batch(
        &mut self,
        env: &Envelope,
        partition: PartitionId,
        txs: &[ReplicatedTx],
        watermark: Timestamp,
        frames: u32,
        now: u64,
    ) -> Vec<Envelope> {
        self.pipeline.apply_replicated(txs);
        self.note_remote_applied(env.src.dc(), partition, txs, watermark, frames, now)
    }

    /// `Heartbeat` from a peer replica (Alg. 4 lines 31–33).
    pub(super) fn on_heartbeat(
        &mut self,
        env: &Envelope,
        partition: PartitionId,
        watermark: Timestamp,
        now: u64,
    ) -> Vec<Envelope> {
        debug_assert_eq!(partition, self.id.partition, "heartbeat cross-partition");
        self.bump_replica_clock(env.src.dc(), watermark);
        if self.mode == Mode::Bpr {
            self.drain_blocked(now)
        } else {
            Vec::new()
        }
    }

    /// Advances the version-vector entry of a peer replica DC. FIFO
    /// channels make regressions impossible; `max` keeps the entry
    /// monotonic even if a substrate reorders (it must not).
    fn bump_replica_clock(&mut self, from: DcId, watermark: Timestamp) {
        let entry = self.vv.entry(from).or_insert(Timestamp::ZERO);
        debug_assert!(
            *entry <= watermark,
            "replica clock regression from {from}: {entry:?} -> {watermark:?}"
        );
        *entry = (*entry).max(watermark);
        self.root_state
            .publish_watermark(self.installed_watermark());
    }
}
