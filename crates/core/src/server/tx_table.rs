//! The shared coordinator transaction table.
//!
//! PaRiS snapshot assignment (Alg. 2 lines 1–5) is read-only with respect
//! to storage — it reads the published UST — so the runtime may serve
//! `StartTxReq` from read-pool threads, off the server loop. What it does
//! mutate is coordinator bookkeeping: the fresh transaction id and the
//! `TX[id_T]` context every later operation of the transaction looks up.
//! This table is that bookkeeping, shared (via `Arc`) between the server
//! state machine and its [`ReadView`](crate::ReadView)s:
//!
//! * the id sequence is a lock-free atomic counter;
//! * the context map sits behind a mutex whose critical sections are a
//!   handful of map operations — starts are one per transaction, so the
//!   lock is cold next to the (lock-free) read admission path.
//!
//! # GC safety of off-loop assignment
//!
//! The `S_old` aggregate (§IV-B) must never advance past the snapshot of
//! an active transaction. The loop computes its contribution —
//! [`TxTable::oldest_active_snapshot`] — from this table, so an off-loop
//! start that reads `ust = X` and *then* registers its context would race
//! it: a stabilization tick between the two steps could report a minimum
//! above `X`. The table closes the window by doing both under one lock:
//! [`TxTable::begin_paris`] reads the UST and inserts the context inside
//! the same critical section that `oldest_active_snapshot` takes, and
//! `oldest_active_snapshot` reads its idle fallback (the current UST)
//! inside that section too. Every report therefore either sees the new
//! context or ran entirely before its snapshot was assigned — in which
//! case the reported minimum is at most the UST of that earlier instant,
//! which monotonicity keeps at or below the snapshot.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use paris_storage::StableFrontier;
use paris_types::{ClientId, ServerId, Timestamp, TxId};

use super::TxContext;

/// Coordinator transaction contexts plus the transaction-id sequence,
/// shared between the server loop and its read views. See the module
/// docs.
#[derive(Debug, Default)]
pub(crate) struct TxTable {
    /// Next transaction sequence number (ids are `(server, seq)`).
    next_seq: AtomicU64,
    /// The paper's `TX[id_T]` map (Alg. 2 line 4).
    ctxs: Mutex<HashMap<TxId, TxContext>>,
}

impl TxTable {
    /// Locks the context map for one coordinator operation.
    pub(crate) fn lock(&self) -> MutexGuard<'_, HashMap<TxId, TxContext>> {
        self.ctxs.lock().expect("tx table poisoned")
    }

    /// PaRiS snapshot assignment: `ust ← max(ust, ust_c)`, snapshot =
    /// `ust`, context registered — all in one critical section, so the
    /// `S_old` aggregate can never miss an assigned-but-unregistered
    /// snapshot (module docs). Safe to call from any thread.
    pub(crate) fn begin_paris(
        &self,
        id: ServerId,
        client: ClientId,
        frontier: &StableFrontier,
        client_ust: Timestamp,
        now: u64,
    ) -> (TxId, Timestamp) {
        let mut ctxs = self.lock();
        let snapshot = frontier.max_ust(client_ust);
        let tx = TxId::new(id, self.next_seq.fetch_add(1, Ordering::Relaxed));
        ctxs.insert(
            tx,
            TxContext {
                snapshot,
                client,
                pending: None,
                started_at: now,
            },
        );
        (tx, snapshot)
    }

    /// Registers a context with a precomputed snapshot (the BPR loop path:
    /// fresh snapshots come from the HLC, which only the loop owns).
    pub(crate) fn begin_with_snapshot(
        &self,
        id: ServerId,
        client: ClientId,
        snapshot: Timestamp,
        now: u64,
    ) -> TxId {
        let mut ctxs = self.lock();
        let tx = TxId::new(id, self.next_seq.fetch_add(1, Ordering::Relaxed));
        ctxs.insert(
            tx,
            TxContext {
                snapshot,
                client,
                pending: None,
                started_at: now,
            },
        );
        tx
    }

    /// The oldest snapshot among transactions coordinated here, or the
    /// current UST when idle — this server's contribution to the `S_old`
    /// aggregate (§IV-B). The idle fallback is read under the table lock
    /// so it cannot leapfrog an assignment in progress.
    pub(crate) fn oldest_active_snapshot(&self, frontier: &StableFrontier) -> Timestamp {
        let ctxs = self.lock();
        ctxs.values()
            .map(|c| c.snapshot)
            .min()
            .unwrap_or_else(|| frontier.ust())
    }

    /// Number of open contexts.
    pub(crate) fn len(&self) -> usize {
        self.lock().len()
    }

    /// Drops contexts older than `timeout_micros`; returns how many.
    pub(crate) fn expire(&self, now: u64, timeout_micros: u64) -> usize {
        let mut ctxs = self.lock();
        let before = ctxs.len();
        ctxs.retain(|_, ctx| now.saturating_sub(ctx.started_at) < timeout_micros);
        before - ctxs.len()
    }
}
