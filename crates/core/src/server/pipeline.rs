//! The per-shard commit pipeline: the write half of the server, made
//! concurrent.
//!
//! PaRiS parallelized the *read* path first (Alg. 3 slice reads off the
//! loop via [`crate::ReadView`]); this module does the same for the write
//! path. A [`CommitPipeline`] is a cheap `Arc`-shared handle onto a
//! server's sharded storage [`Engine`] plus a fixed set of **apply
//! lanes** — one mutex per lane, each lane owning a disjoint set of store
//! shards (`lane = shard % lanes`). Two halves of every write-path
//! message run through it:
//!
//! * **Prepare staging** ([`CommitPipeline::stage_prepare`], Alg. 3
//!   lines 9–14): the UST bump (`ust ← max(ust, snapshot)`, an atomic on
//!   the shared [`StableFrontier`]), the write-set copy and the per-shard
//!   partitioning all run *off* the server loop; only the HLC stamp and
//!   the `Prepared` insert re-enter the loop via
//!   [`Server::admit_prepared`](super::Server::admit_prepared) — the 2PC
//!   decision ordering the paper requires stays loop-owned.
//! * **Replication apply** ([`CommitPipeline::apply_replicated`], Alg. 4
//!   lines 23–30): versions destined for different shards apply in
//!   parallel on different lanes, while versions for the *same* shard
//!   apply under that shard's lane mutex in the batch's ascending
//!   `(ct, tx)` order. The version-vector bump that makes the batch
//!   *visible* re-enters the loop via
//!   [`Server::note_remote_applied`](super::Server::note_remote_applied),
//!   strictly after every store write of the batch has landed — so the
//!   installed watermark never announces a version that is not yet
//!   readable.
//!
//! Safety against concurrent GC is inherited from the store: applies
//! carry `ct >` the installed watermark `≥ UST ≥ S_old`, so the trimmed
//! horizon can never touch an in-flight apply. Safety against each other
//! comes from the lanes; callers that fan one batch across workers must
//! route **by source server** (same src → same lane) so per-src FIFO —
//! the order Alg. 4's watermark argument relies on — is preserved.
//!
//! Dropping a [`LaneGuard`] without holding it across the apply would
//! silently serialize nothing and order nothing, hence the `#[must_use]`
//! and the module-wide `unused_must_use` deny (CI runs clippy with
//! `-D warnings`, so a dropped guard fails the build).

#![deny(unused_must_use)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use paris_proto::ReplicatedTx;
use paris_storage::{Engine, StableFrontier};
use paris_types::{Timestamp, WriteSetEntry};

/// Write-path counters, shared between a server and all pipeline handles.
#[derive(Debug, Default)]
pub struct PipelineStats {
    /// Prepares staged through the pipeline (on- or off-loop).
    staged_prepares: AtomicU64,
    /// Replication frames applied through the lanes.
    lane_batches: AtomicU64,
    /// Versions inserted through the lanes.
    lane_applies: AtomicU64,
}

impl PipelineStats {
    /// Prepares staged so far.
    pub fn staged_prepares(&self) -> u64 {
        self.staged_prepares.load(Ordering::Relaxed)
    }

    /// Replication frames applied through the lanes so far.
    pub fn lane_batches(&self) -> u64 {
        self.lane_batches.load(Ordering::Relaxed)
    }

    /// Versions inserted through the lanes so far.
    pub fn lane_applies(&self) -> u64 {
        self.lane_applies.load(Ordering::Relaxed)
    }
}

/// A staged prepare: everything Alg. 3 lines 9–14 can compute without the
/// server loop. Feed it to
/// [`Server::admit_prepared`](super::Server::admit_prepared) for the HLC
/// stamp and the `Prepared`-queue insert.
#[derive(Debug)]
#[must_use = "a staged prepare must be admitted on the server loop"]
pub struct StagedPrepare {
    /// The UST after the Alg. 3 line 11 bump (`ust ← max(ust, snapshot)`).
    pub(crate) ust: Timestamp,
    /// The write set, copied off-loop.
    pub(crate) writes: Vec<WriteSetEntry>,
    /// Distinct apply lanes the write set touches (observability; the
    /// lanes are acquired at apply time, not prepare time).
    pub(crate) lanes_touched: usize,
}

impl StagedPrepare {
    /// Distinct apply lanes this write set will occupy when it applies.
    pub fn lanes_touched(&self) -> usize {
        self.lanes_touched
    }
}

/// Exclusive hold of one apply lane. Writes to the lane's shard set are
/// ordered by this guard; dropping it early un-serializes the lane.
#[must_use = "dropping the guard releases the lane before the apply is ordered"]
#[derive(Debug)]
pub struct LaneGuard<'a> {
    _held: MutexGuard<'a, ()>,
}

/// The concurrently-usable write-path handle of one server. See the
/// module docs. Obtain one with
/// [`Server::commit_pipeline`](super::Server::commit_pipeline); it is
/// `Arc`-shared, so clones are cheap and all of them hit the same lanes.
#[derive(Debug)]
pub struct CommitPipeline {
    store: Arc<dyn Engine>,
    frontier: Arc<StableFrontier>,
    lanes: Box<[Mutex<()>]>,
    stats: PipelineStats,
}

impl CommitPipeline {
    /// A pipeline over `store` with `lanes` apply lanes (clamped to at
    /// least one; more lanes than shards buys nothing and is clamped
    /// down).
    pub(crate) fn new(store: Arc<dyn Engine>, frontier: Arc<StableFrontier>, lanes: usize) -> Self {
        let lanes = lanes.clamp(1, store.shard_count());
        CommitPipeline {
            store,
            frontier,
            lanes: (0..lanes).map(|_| Mutex::new(())).collect(),
            stats: PipelineStats::default(),
        }
    }

    /// Number of apply lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The shared write-path counters.
    pub fn stats(&self) -> &PipelineStats {
        &self.stats
    }

    /// The lane owning store shard `shard`.
    fn lane_of_shard(&self, shard: usize) -> usize {
        shard % self.lanes.len()
    }

    /// The lane that will apply writes to `key`.
    pub fn lane_of(&self, key: paris_types::Key) -> usize {
        self.lane_of_shard(self.store.shard_index(key))
    }

    /// Acquires exclusive hold of one apply lane. Never acquire two lanes
    /// from one thread — the pipeline's internal paths take one lane at a
    /// time precisely so lane order cannot deadlock.
    pub fn acquire(&self, lane: usize) -> LaneGuard<'_> {
        LaneGuard {
            _held: self.lanes[lane].lock().expect("apply lane poisoned"),
        }
    }

    /// Stages one `PrepareReq` off the server loop (Alg. 3 lines 9–14,
    /// minus the HLC stamp): bumps the shared UST to the snapshot,
    /// copies the write set and partitions it by store shard. The result
    /// must be handed to
    /// [`Server::admit_prepared`](super::Server::admit_prepared).
    pub fn stage_prepare(&self, snapshot: Timestamp, writes: &[WriteSetEntry]) -> StagedPrepare {
        // Alg. 3 line 11: ust ← max(ust, snapshot). Atomic on the shared
        // frontier — the same monotone fetch_max the read path uses.
        let ust = self.frontier.max_ust(snapshot);
        let mut touched = vec![false; self.lanes.len()];
        for w in writes {
            touched[self.lane_of(w.key)] = true;
        }
        self.stats.staged_prepares.fetch_add(1, Ordering::Relaxed);
        StagedPrepare {
            ust,
            writes: writes.to_vec(),
            lanes_touched: touched.iter().filter(|&&t| t).count(),
        }
    }

    /// Applies one replication batch through the lanes (Alg. 4
    /// lines 24–28): writes are partitioned by store shard, each lane's
    /// slice is applied under that lane's mutex in the batch's ascending
    /// `(ct, tx)` order, and lanes holding disjoint shard sets proceed in
    /// parallel across threads. Exactly one lane is held at a time, so
    /// concurrent callers cannot deadlock. Returns the number of versions
    /// newly inserted (re-deliveries are idempotent).
    ///
    /// Callers fanning batches across threads must route all batches of
    /// one source server through the same thread (per-src FIFO); see the
    /// module docs.
    pub fn apply_replicated(&self, txs: &[ReplicatedTx]) -> u64 {
        let mut by_lane: Vec<Vec<(&WriteSetEntry, &ReplicatedTx)>> =
            vec![Vec::new(); self.lanes.len()];
        for t in txs {
            for w in &t.writes {
                by_lane[self.lane_of(w.key)].push((w, t));
            }
        }
        let mut inserted = 0u64;
        for (lane, writes) in by_lane.iter().enumerate() {
            if writes.is_empty() {
                continue;
            }
            let guard = self.acquire(lane);
            for &(w, t) in writes {
                if self.store.apply(w.key, w.value.clone(), t.ct, t.tx, t.src) {
                    inserted += 1;
                }
            }
            drop(guard);
        }
        self.stats.lane_batches.fetch_add(1, Ordering::Relaxed);
        self.stats
            .lane_applies
            .fetch_add(inserted, Ordering::Relaxed);
        inserted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_storage::PartitionStore;
    use paris_types::{DcId, Key, PartitionId, ServerId, TxId, Value};

    fn ts(t: u64) -> Timestamp {
        Timestamp::from_physical_micros(t)
    }

    fn pipeline(lanes: usize) -> CommitPipeline {
        CommitPipeline::new(
            Arc::new(PartitionStore::new()),
            Arc::new(StableFrontier::new()),
            lanes,
        )
    }

    fn rtx(seq: u64, ct: u64, keys: &[u64]) -> ReplicatedTx {
        ReplicatedTx {
            tx: TxId::new(ServerId::new(DcId(0), PartitionId(0)), seq),
            ct: ts(ct),
            src: DcId(0),
            writes: keys
                .iter()
                .map(|&k| WriteSetEntry::new(Key(k), Value(k.to_le_bytes().to_vec())))
                .collect(),
        }
    }

    #[test]
    fn lanes_are_clamped_to_the_shard_count() {
        assert_eq!(pipeline(0).lane_count(), 1);
        assert_eq!(pipeline(4).lane_count(), 4);
        assert_eq!(pipeline(1_000).lane_count(), 16, "one lane per shard max");
    }

    #[test]
    fn stage_prepare_bumps_the_ust_and_partitions_by_lane() {
        let p = pipeline(4);
        let writes: Vec<WriteSetEntry> = (0..64u64)
            .map(|k| WriteSetEntry::new(Key(k), Value(k.to_le_bytes().to_vec())))
            .collect();
        let staged = p.stage_prepare(ts(50), &writes);
        assert_eq!(staged.ust, ts(50), "Alg. 3 line 11 ran off-loop");
        assert_eq!(p.frontier.ust(), ts(50));
        assert_eq!(staged.lanes_touched(), 4, "64 dense keys span every lane");
        assert_eq!(p.stats().staged_prepares(), 1);
        let narrow = p.stage_prepare(ts(40), &writes[..1]);
        assert_eq!(narrow.ust, ts(50), "UST is monotone");
        assert_eq!(narrow.lanes_touched(), 1);
    }

    #[test]
    fn apply_routes_every_write_to_its_key_shard_lane() {
        let p = pipeline(4);
        for k in 0..32 {
            assert_eq!(
                p.lane_of(Key(k)),
                p.store.shard_index(Key(k)) % 4,
                "lane = shard mod lanes"
            );
        }
    }

    #[test]
    fn apply_replicated_installs_every_version_once() {
        let p = pipeline(4);
        let batch = vec![rtx(1, 10, &[1, 2, 3]), rtx(2, 20, &[2, 40, 41])];
        assert_eq!(p.apply_replicated(&batch), 6);
        assert_eq!(p.apply_replicated(&batch), 0, "re-delivery is idempotent");
        assert_eq!(p.stats().lane_applies(), 6);
        assert_eq!(p.stats().lane_batches(), 2);
        for (k, ct) in [(1, 10), (2, 20), (3, 10), (40, 20), (41, 20)] {
            let v = p.store.latest(Key(k)).expect("version installed");
            assert_eq!(v.ut, ts(ct), "freshest ct per key");
        }
    }

    #[test]
    fn same_shard_writes_keep_batch_ct_order() {
        // One lane: every write serializes through it, and the chain
        // (retained newest-first) must hold every version in ct order.
        let p = pipeline(1);
        let batch = vec![rtx(1, 10, &[7]), rtx(2, 20, &[7]), rtx(3, 30, &[7])];
        assert_eq!(p.apply_replicated(&batch), 3);
        let chain: Vec<u64> = p
            .store
            .chain(Key(7))
            .expect("chain exists")
            .iter()
            .map(|v| v.ut.physical_micros())
            .collect();
        assert_eq!(chain, vec![30, 20, 10]);
    }

    #[test]
    fn concurrent_lane_holders_exclude_each_other() {
        let p = Arc::new(pipeline(2));
        let guard = p.acquire(0);
        let p2 = Arc::clone(&p);
        let other = std::thread::spawn(move || {
            // Lane 1 is free: acquiring it must not block on lane 0.
            let g = p2.acquire(1);
            drop(g);
        });
        other.join().expect("disjoint lane acquired while 0 held");
        drop(guard);
        let g = p.acquire(0);
        drop(g);
    }
}
