//! The Universal Stable Time protocol (paper §IV-B, Alg. 4 lines 34–38).
//!
//! Within each DC, servers form an aggregation tree. Every ∆G each server
//! merges its version vector with the freshest reports of its tree
//! children and forwards the aggregate towards the DC root; the root's
//! aggregate is the DC's Global Stabilization Vector (GSV), whose minimum
//! entry is the DC's Global Stable Time (GST). Roots exchange GSTs; every
//! ∆U each root takes the minimum over all DCs — the **UST** — and
//! broadcasts it (monotonically) to its DC. The same messages carry the
//! oldest-active-snapshot aggregate that bounds garbage collection
//! (`S_old`).
//!
//! Safety note: a server's aggregate must *under*-approximate its subtree,
//! so children it has not heard from yet are seeded at `Timestamp::ZERO`
//! for every DC their partition replicates with.

use std::collections::HashMap;

use paris_proto::{Envelope, Msg};
use paris_types::{DcId, PartitionId, Timestamp};

use super::Server;

impl Server {
    /// Seeds the child-report table so the aggregate is conservative until
    /// every child has reported (called from `Server::new` via this
    /// crate-internal hook).
    pub(crate) fn seed_child_reports(&mut self) {
        for child in self.topo.tree_children(self.id) {
            self.child_reports
                .seed(child.partition, self.topo.replicas(child.partition));
        }
    }

    /// This server's subtree aggregate: per-source-DC minimum over its own
    /// version vector and all child reports, plus the subtree's oldest
    /// active snapshot.
    fn subtree_aggregate(&self) -> (Vec<(DcId, Timestamp)>, Timestamp) {
        let mut mins: HashMap<DcId, Timestamp> =
            self.vv.iter().map(|(dc, ts)| (*dc, *ts)).collect();
        let mut oldest = self.oldest_active_snapshot();
        self.child_reports.for_each(|report, child_oldest| {
            for (dc, ts) in report {
                mins.entry(*dc)
                    .and_modify(|cur| *cur = (*cur).min(*ts))
                    .or_insert(*ts);
            }
            oldest = oldest.min(child_oldest);
        });
        let mut mins: Vec<(DcId, Timestamp)> = mins.into_iter().collect();
        mins.sort_unstable_by_key(|(dc, _)| *dc);
        (mins, oldest)
    }

    /// The ∆G tick: push the subtree aggregate one level up the tree, or —
    /// at the root — refresh the DC's GSV/GST and exchange it with the
    /// other DC roots.
    pub fn on_gst_tick(&mut self, _now: u64) -> Vec<Envelope> {
        let (mins, oldest_active) = self.subtree_aggregate();
        match self.topo.tree_parent(self.id) {
            Some(parent) => vec![Envelope::new(
                self.id,
                parent,
                Msg::GstReport {
                    partition: self.id.partition,
                    mins,
                    oldest_active,
                },
            )],
            None => {
                // Root: GST = min over the GSV entries (Alg. 4 line 35).
                let gst = mins
                    .iter()
                    .map(|(_, ts)| *ts)
                    .min()
                    .unwrap_or(Timestamp::ZERO);
                self.dc_roots.publish_own(self.id.dc, gst, oldest_active);
                self.topo
                    .all_roots()
                    .into_iter()
                    .filter(|r| r.dc != self.id.dc)
                    .map(|r| {
                        Envelope::new(
                            self.id,
                            r,
                            Msg::RootGst {
                                dc: self.id.dc,
                                gst,
                                oldest_active,
                            },
                        )
                    })
                    .collect()
            }
        }
    }

    /// The ∆U tick (roots only): UST = min over every DC's GST
    /// (Alg. 4 lines 36–38), `S_old` = min over every DC's oldest active
    /// snapshot; both advance monotonically and are broadcast to the DC.
    pub fn on_ust_tick(&mut self, now: u64) -> Vec<Envelope> {
        if self.topo.tree_parent(self.id).is_some() {
            return Vec::new(); // not a root
        }
        // All M DCs must have reported at least once (own included).
        let Some((min_gst, min_oldest)) = self.dc_roots.stable_mins(self.topo.dcs() as usize)
        else {
            return Vec::new();
        };
        // Alg. 4 line 38: enforce monotonicity (the frontier's fetch_max).
        if self.frontier.advance_ust(min_gst) {
            self.log_ust(min_gst, now);
        }
        let ust = self.frontier.ust();
        self.frontier.advance_s_old(min_oldest.min(ust));
        let s_old = self.frontier.s_old();
        self.topo
            .servers_in_dc(self.id.dc)
            .into_iter()
            .filter(|s| *s != self.id)
            .map(|s| Envelope::new(self.id, s, Msg::UstBroadcast { ust, s_old }))
            .collect()
    }

    /// A child's subtree report (tree-internal message). The fold goes
    /// through the shared [`super::ReportTable`] — the exact same path
    /// [`crate::ReadView::serve_gst_report`] uses when the threaded
    /// runtime serves an unbatched report off the loop — so loop and pool
    /// deliveries can interleave safely.
    pub(super) fn on_gst_report(
        &mut self,
        partition: PartitionId,
        mins: &[(DcId, Timestamp)],
        oldest_active: Timestamp,
    ) -> Vec<Envelope> {
        self.child_reports.fold(partition, mins, oldest_active);
        Vec::new()
    }

    /// Another DC root's GST (inter-DC exchange). The fold goes through
    /// the shared [`super::RootsTable`] — the same path
    /// [`crate::ReadView::serve_gossip_digest`] uses when the threaded
    /// runtime folds a whole digest off the loop.
    pub(super) fn on_root_gst(
        &mut self,
        dc: DcId,
        gst: Timestamp,
        oldest_active: Timestamp,
    ) -> Vec<Envelope> {
        self.dc_roots.fold_remote(dc, gst, oldest_active);
        Vec::new()
    }

    /// A coalesced gossip digest: folds each component into the exact
    /// handler an individual frame would have hit. Because every component
    /// is monotonic and the handlers keep only the freshest value, a
    /// digest is indistinguishable from delivering its frames in order.
    pub(super) fn on_gossip_digest(
        &mut self,
        reports: &[paris_proto::DigestReport],
        roots: &[(DcId, Timestamp, Timestamp)],
        ust: Option<(Timestamp, Timestamp)>,
        frames: u32,
        now: u64,
    ) -> Vec<Envelope> {
        self.stats.coalesced_frames += u64::from(frames);
        let mut out = Vec::new();
        for r in reports {
            out.extend(self.on_gst_report(r.partition, &r.mins, r.oldest_active));
        }
        for (dc, gst, oldest_active) in roots {
            out.extend(self.on_root_gst(*dc, *gst, *oldest_active));
        }
        if let Some((ust, s_old)) = ust {
            out.extend(self.on_ust_broadcast(ust, s_old, now));
        }
        out
    }

    /// The root's UST/S_old broadcast.
    pub(super) fn on_ust_broadcast(
        &mut self,
        ust: Timestamp,
        s_old: Timestamp,
        now: u64,
    ) -> Vec<Envelope> {
        if self.frontier.advance_ust(ust) {
            self.log_ust(ust, now);
        }
        self.frontier.advance_s_old(s_old);
        Vec::new()
    }
}
