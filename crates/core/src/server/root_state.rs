//! Loop-owned root state, published for lock-free observation.
//!
//! With the write path fanned out over pipeline lanes, two pieces of
//! protocol state remain strictly **loop-owned**: the HLC (every stamp
//! and observation happens under the server's single-writer discipline,
//! Alg. 3 lines 12/16) and the installed watermark `min(VV)` (bumped
//! only after a batch's store writes have landed, Alg. 4 lines 18/29).
//! Off-loop workers, stats snapshots and benches still want to *read*
//! both without taking the server mutex, so the loop publishes them here
//! — the same pattern as [`StableFrontier`](paris_storage::StableFrontier)
//! for UST/`S_old`: atomics with monotone publish methods that only the
//! loop calls, and lock-free getters for everyone else.
//!
//! Publication is deliberately *after* the state change it mirrors, so a
//! reader can under-approximate but never over-approximate the loop's
//! progress — the same monotone-witness argument the `ReportTable` fold
//! uses for off-loop gossip.

use std::sync::atomic::{AtomicU64, Ordering};

use paris_types::Timestamp;

/// Published loop-owned state of one server. See the module docs.
#[derive(Debug, Default)]
pub struct RootState {
    /// Packed [`Timestamp`]: the freshest HLC value the loop has stamped
    /// or observed.
    hlc: AtomicU64,
    /// Packed [`Timestamp`]: the installed watermark `min(VV)` — every
    /// version at or below it is readable in the store.
    watermark: AtomicU64,
}

impl RootState {
    /// The freshest published HLC value.
    pub fn hlc(&self) -> Timestamp {
        Timestamp::from_u64(self.hlc.load(Ordering::SeqCst))
    }

    /// The published installed watermark `min(VV)`.
    pub fn installed_watermark(&self) -> Timestamp {
        Timestamp::from_u64(self.watermark.load(Ordering::SeqCst))
    }

    /// Publishes an HLC advance. Loop-only; monotone, so a stale republish
    /// (or a racing reader) can never observe time moving backwards.
    pub(crate) fn publish_hlc(&self, ts: Timestamp) {
        self.hlc.fetch_max(ts.as_u64(), Ordering::SeqCst);
    }

    /// Publishes an installed-watermark advance. Loop-only; monotone.
    pub(crate) fn publish_watermark(&self, ts: Timestamp) {
        self.watermark.fetch_max(ts.as_u64(), Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(t: u64) -> Timestamp {
        Timestamp::from_physical_micros(t)
    }

    #[test]
    fn starts_at_zero() {
        let r = RootState::default();
        assert_eq!(r.hlc(), Timestamp::ZERO);
        assert_eq!(r.installed_watermark(), Timestamp::ZERO);
    }

    #[test]
    fn publishes_are_monotone() {
        let r = RootState::default();
        r.publish_hlc(ts(10));
        r.publish_hlc(ts(5));
        assert_eq!(r.hlc(), ts(10), "stale republish cannot regress");
        r.publish_watermark(ts(7));
        r.publish_watermark(ts(3));
        assert_eq!(r.installed_watermark(), ts(7));
        r.publish_watermark(ts(9));
        assert_eq!(r.installed_watermark(), ts(9));
    }
}
