//! The shared inter-DC root table: latest `(GST, oldest_active)` per DC.
//!
//! Historically this map was a private field of the server loop, which
//! forced every coalesced `GossipDigest` — the dominant gossip carrier
//! once coalescing is on — to queue on the server mailbox behind commits
//! and replication batches, just to fold a handful of monotone maxima.
//! Hoisting the map into a shared table (mirroring
//! [`super::ReportTable`] for child reports) lets
//! [`crate::ReadView::serve_gossip_digest`] absorb whole digests on the
//! read pool.
//!
//! Concurrency is trivial because every fold is a per-entry monotone
//! maximum: out-of-order deliveries (racing pool lanes, or a pool frame
//! racing a loop frame) converge to the same state as in-order delivery.
//! The one asymmetry is the root's **own** entry: the loop's ∆G tick is
//! the single authoritative writer of the local aggregate, and its
//! `oldest_active` component may legitimately move backwards (a
//! fresh long-lived transaction lowers the DC's oldest active snapshot),
//! so [`RootsTable::publish_own`] overwrites it instead of max-folding —
//! exactly what the loop-owned map did.

use std::collections::HashMap;
use std::sync::Mutex;

use paris_types::{DcId, Timestamp};

/// Latest known `(GST, oldest_active)` per DC root, shared between a
/// root server's loop and its read views. See the module docs.
#[derive(Debug, Default)]
pub(crate) struct RootsTable {
    entries: Mutex<HashMap<DcId, (Timestamp, Timestamp)>>,
}

impl RootsTable {
    /// Folds a remote root's `RootGst` announcement. FIFO channels keep
    /// announcements monotonic per sender; the entry-wise max makes
    /// racing pool/loop deliveries commute.
    pub(crate) fn fold_remote(&self, dc: DcId, gst: Timestamp, oldest_active: Timestamp) {
        let mut entries = self.entries.lock().expect("roots table poisoned");
        let entry = entries
            .entry(dc)
            .or_insert((Timestamp::ZERO, Timestamp::ZERO));
        entry.0 = entry.0.max(gst);
        entry.1 = entry.1.max(oldest_active);
    }

    /// Publishes the local root's own aggregate (∆G tick, loop-only).
    /// The GST is monotone (it derives from the version vector), but
    /// `oldest_active` is authoritative and may regress when a long-lived
    /// transaction opens, so it overwrites.
    pub(crate) fn publish_own(&self, dc: DcId, gst: Timestamp, oldest_active: Timestamp) {
        let mut entries = self.entries.lock().expect("roots table poisoned");
        let entry = entries.entry(dc).or_insert((gst, oldest_active));
        entry.0 = entry.0.max(gst);
        entry.1 = oldest_active;
    }

    /// The `(min GST, min oldest_active)` over all DCs, or `None` until at
    /// least `required` DCs have reported (Alg. 4 line 36 demands every
    /// DC's GST before the first UST can exist).
    pub(crate) fn stable_mins(&self, required: usize) -> Option<(Timestamp, Timestamp)> {
        let entries = self.entries.lock().expect("roots table poisoned");
        if entries.len() < required {
            return None;
        }
        let min_gst = entries.values().map(|(gst, _)| *gst).min()?;
        let min_oldest = entries.values().map(|(_, oldest)| *oldest).min()?;
        Some((min_gst, min_oldest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(t: u64) -> Timestamp {
        Timestamp::from_physical_micros(t)
    }

    #[test]
    fn empty_until_required_dcs_report() {
        let table = RootsTable::default();
        assert_eq!(table.stable_mins(1), None);
        table.fold_remote(DcId(1), ts(10), ts(5));
        assert_eq!(table.stable_mins(2), None, "one of two DCs known");
        assert_eq!(table.stable_mins(1), Some((ts(10), ts(5))));
    }

    #[test]
    fn remote_folds_are_entrywise_monotone() {
        let table = RootsTable::default();
        table.fold_remote(DcId(1), ts(10), ts(8));
        table.fold_remote(DcId(1), ts(7), ts(12)); // out-of-order race
        assert_eq!(table.stable_mins(1), Some((ts(10), ts(12))));
    }

    #[test]
    fn own_entry_overwrites_oldest_active() {
        let table = RootsTable::default();
        table.publish_own(DcId(0), ts(20), ts(20));
        // A long-lived transaction opens: oldest active regresses.
        table.publish_own(DcId(0), ts(25), ts(15));
        assert_eq!(table.stable_mins(1), Some((ts(25), ts(15))));
    }

    #[test]
    fn mins_span_all_dcs() {
        let table = RootsTable::default();
        table.publish_own(DcId(0), ts(30), ts(25));
        table.fold_remote(DcId(1), ts(20), ts(40));
        table.fold_remote(DcId(2), ts(50), ts(10));
        assert_eq!(table.stable_mins(3), Some((ts(20), ts(10))));
    }
}
