//! The client session state machine (paper Algorithm 1).
//!
//! A [`ClientSession`] holds the paper's client-side state: the highest
//! stable snapshot seen (`ust_c`), the commit time of the last update
//! transaction (`hwt_c`), the private write cache (`WC_c`) holding the
//! client's own writes not yet covered by the stable snapshot, and — for
//! the open transaction — the read set (`RS_c`) and write set (`WS_c`).
//!
//! The session is sans-I/O: API calls return either an immediately
//! available result or an [`Envelope`] to send; [`ClientSession::handle`]
//! consumes responses and emits [`ClientEvent`]s. Clients are sequential
//! (one outstanding operation), matching §II-C.

use std::collections::HashMap;

use paris_proto::{Endpoint, Envelope, Msg, ReadResult};
use paris_types::{
    ClientId, Error, Key, Mode, ServerId, Timestamp, TxId, Value, Version, WriteSetEntry,
};

/// Where a read result came from, in the priority order of Alg. 1 line 11:
/// write set, then read set, then write cache, then the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadSource {
    /// The open transaction's own buffered (uncommitted) write.
    WriteSet,
    /// A repeat of an earlier read in the same transaction.
    ReadSet,
    /// The client's private cache of committed-but-not-yet-stable writes —
    /// this is what preserves read-your-own-writes over the slightly stale
    /// UST snapshot.
    Cache,
    /// A server slice read from the stable snapshot.
    Server,
}

/// One completed read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientRead {
    /// The key read.
    pub key: Key,
    /// The value, or `None` if no visible version exists.
    pub value: Option<Value>,
    /// The full version tuple when one exists (absent for `WriteSet`
    /// reads, which have no commit timestamp yet).
    pub version: Option<Version>,
    /// Which tier satisfied the read.
    pub source: ReadSource,
}

/// Events produced by [`ClientSession::handle`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientEvent {
    /// `START-TX` completed (Alg. 1 lines 1–7).
    Started {
        /// The transaction id.
        tx: TxId,
        /// The assigned snapshot.
        snapshot: Timestamp,
    },
    /// A `READ` completed (Alg. 1 lines 8–20).
    ReadDone {
        /// The transaction id.
        tx: TxId,
        /// Results in no particular order.
        reads: Vec<ClientRead>,
    },
    /// `COMMIT-TX` completed (Alg. 1 lines 26–32).
    Committed {
        /// The transaction id.
        tx: TxId,
        /// Commit timestamp; `Timestamp::ZERO` for read-only transactions.
        ct: Timestamp,
    },
    /// The coordinator aborted the transaction because a target partition
    /// had no reachable replica (§III-C unavailability). The session is
    /// idle again; none of the transaction's writes took effect.
    Aborted {
        /// The transaction id.
        tx: TxId,
    },
}

/// Outcome of [`ClientSession::read`]: either all keys were satisfied
/// locally, or a request must be sent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadStep {
    /// Every key was served from the write set / read set / cache.
    Done(Vec<ClientRead>),
    /// Send this to the coordinator; completion arrives via `handle`.
    Send(Envelope),
}

#[derive(Debug)]
struct OpenTx {
    tx: TxId,
    snapshot: Timestamp,
    /// `RS_c`: completed reads, for repeatable-read semantics.
    read_set: HashMap<Key, ClientRead>,
    /// `WS_c`: buffered writes (last write per key wins, Alg. 1 line 23).
    write_set: HashMap<Key, Value>,
    /// Reads satisfied locally while a server round-trip is in flight.
    pending_local: Vec<ClientRead>,
    /// Whether a server operation is in flight.
    in_flight: bool,
}

/// A cached own-write: value plus the commit timestamp it received.
#[derive(Debug, Clone)]
struct CachedWrite {
    version: Version,
}

/// The PaRiS client session (see module docs).
///
/// # Example
///
/// ```
/// use paris_core::{ClientSession, Topology};
/// use paris_types::{ClientId, ClusterConfig, DcId, Mode};
///
/// let topo = Topology::new(ClusterConfig::default());
/// let id = ClientId::new(DcId(0), 7);
/// let coordinator = topo.coordinator_for(id.dc, id.seq);
/// let mut session = ClientSession::new(id, coordinator, Mode::Paris);
/// let start = session.begin()?; // envelope to send to the coordinator
/// assert_eq!(start.dst, coordinator.into());
/// # Ok::<(), paris_types::Error>(())
/// ```
#[derive(Debug)]
pub struct ClientSession {
    id: ClientId,
    coordinator: ServerId,
    mode: Mode,
    /// `ust_c`: highest stable snapshot seen.
    ust: Timestamp,
    /// `hwt_c`: commit time of the last update transaction.
    hwt: Timestamp,
    /// `WC_c`: own committed writes not yet in the stable snapshot.
    cache: HashMap<Key, CachedWrite>,
    open: Option<OpenTx>,
    /// Waiting for a `StartTxResp`.
    starting: bool,
    /// `StartTxResp`s still owed to begins abandoned by
    /// [`ClientSession::reset`]. `StartTxResp` carries no transaction-id
    /// correlation (the coordinator assigns the id), but the channel is
    /// FIFO, so responses arrive in request order: the next
    /// `discard_starts` of them belong to abandoned begins and must be
    /// dropped, not adopted by a newer begin.
    discard_starts: u32,
    /// Transactions run (stats).
    started_count: u64,
    committed_count: u64,
}

impl ClientSession {
    /// Creates a session pinned to `coordinator` in the client's local DC.
    pub fn new(id: ClientId, coordinator: ServerId, mode: Mode) -> Self {
        debug_assert_eq!(id.dc, coordinator.dc, "coordinator must be local");
        ClientSession {
            id,
            coordinator,
            mode,
            ust: Timestamp::ZERO,
            hwt: Timestamp::ZERO,
            cache: HashMap::new(),
            open: None,
            starting: false,
            discard_starts: 0,
            started_count: 0,
            committed_count: 0,
        }
    }

    /// The session id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The coordinator server.
    pub fn coordinator(&self) -> ServerId {
        self.coordinator
    }

    /// Highest stable snapshot seen (`ust_c`).
    pub fn ust(&self) -> Timestamp {
        self.ust
    }

    /// Commit time of the last update transaction (`hwt_c`).
    pub fn hwt(&self) -> Timestamp {
        self.hwt
    }

    /// Number of entries currently in the private write cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The open transaction's id, if a transaction is open.
    pub fn open_tx(&self) -> Option<TxId> {
        self.open.as_ref().map(|o| o.tx)
    }

    /// The open transaction's snapshot, if a transaction is open — what
    /// the measurement harness records for the consistency checker.
    pub fn open_snapshot(&self) -> Option<Timestamp> {
        self.open.as_ref().map(|o| o.snapshot)
    }

    /// Transactions started / committed so far.
    pub fn counts(&self) -> (u64, u64) {
        (self.started_count, self.committed_count)
    }

    /// Whether an operation (start, read or commit) is currently waiting
    /// for a coordinator reply. A transport failure mid-operation leaves
    /// the session in this state; see [`ClientSession::reset`].
    pub fn has_operation_in_flight(&self) -> bool {
        self.starting || self.open.as_ref().is_some_and(|o| o.in_flight)
    }

    /// Abandons the open transaction (and any in-flight operation) and
    /// returns the session to idle, so the next [`ClientSession::begin`]
    /// succeeds. The recovery path for a transport-timed-out operation
    /// that would otherwise wedge the session.
    ///
    /// Durable session state survives: `ust_c`, `hwt_c` and the write
    /// cache are untouched, so causal ordering of *completed* transactions
    /// is preserved. The abandoned transaction's buffered writes are
    /// discarded; if its commit actually landed server-side and only the
    /// reply was lost, those writes are *not* entered into the write cache
    /// — read-your-own-writes is forfeited for exactly that transaction
    /// until the UST covers it. Late replies for the abandoned
    /// transaction are ignored by [`ClientSession::handle`]: reads and
    /// commits by their transaction-id checks, and a start abandoned
    /// mid-flight by counting it — the channel is FIFO, so the next
    /// `StartTxResp` to arrive is the abandoned one and is dropped
    /// rather than adopted by a newer begin. The coordinator-side
    /// context, if any, is reclaimed by the server's stale-context
    /// cleanup.
    pub fn reset(&mut self) {
        if self.starting {
            self.discard_starts += 1;
        }
        self.starting = false;
        self.open = None;
    }

    // ------------------------------------------------------------ START

    /// `START-TX` (Alg. 1 lines 1–7): returns the request envelope.
    ///
    /// # Errors
    ///
    /// [`Error::TransactionAlreadyOpen`] if a transaction is open or
    /// starting.
    pub fn begin(&mut self) -> Result<Envelope, Error> {
        if self.open.is_some() || self.starting {
            return Err(Error::TransactionAlreadyOpen);
        }
        self.starting = true;
        Ok(Envelope::new(
            self.id,
            self.coordinator,
            Msg::StartTxReq {
                client_ust: self.ust,
            },
        ))
    }

    // ------------------------------------------------------------- READ

    /// `READ` (Alg. 1 lines 8–20): serves keys from the write set, read
    /// set and cache (in that order); missing keys go to the coordinator.
    ///
    /// # Errors
    ///
    /// [`Error::NoOpenTransaction`] outside a transaction, or
    /// [`Error::TransactionAlreadyOpen`] if an operation is in flight.
    pub fn read(&mut self, keys: &[Key]) -> Result<ReadStep, Error> {
        let open = self.open.as_mut().ok_or(Error::NoOpenTransaction)?;
        if open.in_flight {
            return Err(Error::TransactionAlreadyOpen);
        }
        let mut local: Vec<ClientRead> = Vec::new();
        let mut remote: Vec<Key> = Vec::new();
        for &key in keys {
            // Alg. 1 line 11: check WS_c, RS_c, WC_c in this order.
            if let Some(value) = open.write_set.get(&key) {
                local.push(ClientRead {
                    key,
                    value: Some(value.clone()),
                    version: None,
                    source: ReadSource::WriteSet,
                });
            } else if let Some(prev) = open.read_set.get(&key) {
                local.push(ClientRead {
                    key,
                    value: prev.value.clone(),
                    version: prev.version.clone(),
                    source: ReadSource::ReadSet,
                });
            } else if self.mode == Mode::Paris && self.cache.contains_key(&key) {
                let cached = &self.cache[&key];
                local.push(ClientRead {
                    key,
                    value: Some(cached.version.value.clone()),
                    version: Some(cached.version.clone()),
                    source: ReadSource::Cache,
                });
            } else {
                remote.push(key);
            }
        }
        if remote.is_empty() {
            for r in &local {
                open.read_set.entry(r.key).or_insert_with(|| r.clone());
            }
            return Ok(ReadStep::Done(local));
        }
        open.in_flight = true;
        open.pending_local = local;
        let tx = open.tx;
        Ok(ReadStep::Send(Envelope::new(
            self.id,
            self.coordinator,
            Msg::ReadReq { tx, keys: remote },
        )))
    }

    // ------------------------------------------------------------ WRITE

    /// `WRITE` (Alg. 1 lines 21–25): buffers the writes locally.
    ///
    /// # Errors
    ///
    /// [`Error::NoOpenTransaction`] outside a transaction.
    pub fn write(&mut self, entries: &[(Key, Value)]) -> Result<(), Error> {
        let open = self.open.as_mut().ok_or(Error::NoOpenTransaction)?;
        for (key, value) in entries {
            open.write_set.insert(*key, value.clone());
        }
        Ok(())
    }

    // ----------------------------------------------------------- COMMIT

    /// `COMMIT-TX` (Alg. 1 lines 26–32): ships the write set to the
    /// coordinator with `hwt_c`. Also used to close read-only
    /// transactions (empty write set), which frees the coordinator's
    /// context (and its hold on the GC horizon).
    ///
    /// # Errors
    ///
    /// [`Error::NoOpenTransaction`] outside a transaction, or
    /// [`Error::TransactionAlreadyOpen`] if an operation is in flight.
    pub fn commit(&mut self) -> Result<Envelope, Error> {
        let open = self.open.as_mut().ok_or(Error::NoOpenTransaction)?;
        if open.in_flight {
            return Err(Error::TransactionAlreadyOpen);
        }
        open.in_flight = true;
        let writes: Vec<WriteSetEntry> = open
            .write_set
            .iter()
            .map(|(k, v)| WriteSetEntry::new(*k, v.clone()))
            .collect();
        Ok(Envelope::new(
            self.id,
            self.coordinator,
            Msg::CommitReq {
                tx: open.tx,
                hwt: self.hwt,
                writes,
            },
        ))
    }

    // ----------------------------------------------------------- HANDLE

    /// Consumes a response from the coordinator.
    ///
    /// Returns the completed event, or `None` for stale/duplicate
    /// messages.
    pub fn handle(&mut self, env: &Envelope) -> Option<ClientEvent> {
        debug_assert_eq!(env.dst, Endpoint::Client(self.id));
        match &env.msg {
            Msg::StartTxResp { tx, snapshot } => {
                if self.discard_starts > 0 {
                    // Owed to a begin abandoned by `reset`; FIFO order
                    // makes this response the abandoned one.
                    self.discard_starts -= 1;
                    return None;
                }
                if !self.starting {
                    return None;
                }
                self.starting = false;
                self.started_count += 1;
                // Alg. 1 line 4: ust_c ← ust. The coordinator guarantees
                // monotonicity (it maxes with the piggybacked ust_c).
                self.ust = self.ust.max(*snapshot);
                // Alg. 1 line 6: prune cache entries covered by ust_c.
                let horizon = self.ust;
                self.cache.retain(|_, w| w.version.ut > horizon);
                self.open = Some(OpenTx {
                    tx: *tx,
                    snapshot: *snapshot,
                    read_set: HashMap::new(),
                    write_set: HashMap::new(),
                    pending_local: Vec::new(),
                    in_flight: false,
                });
                Some(ClientEvent::Started {
                    tx: *tx,
                    snapshot: *snapshot,
                })
            }
            Msg::ReadResp { tx, results } => {
                let open = self.open.as_mut()?;
                if open.tx != *tx || !open.in_flight {
                    return None;
                }
                open.in_flight = false;
                let mut reads = std::mem::take(&mut open.pending_local);
                for ReadResult { key, version } in results {
                    reads.push(ClientRead {
                        key: *key,
                        value: version.as_ref().map(|v| v.value.clone()),
                        version: version.clone(),
                        source: ReadSource::Server,
                    });
                }
                // Alg. 1 line 18: RS_c ← RS_c ∪ D.
                for r in &reads {
                    open.read_set.entry(r.key).or_insert_with(|| r.clone());
                }
                Some(ClientEvent::ReadDone { tx: *tx, reads })
            }
            Msg::CommitResp { tx, ct } => {
                let open = self.open.take()?;
                if open.tx != *tx {
                    self.open = Some(open);
                    return None;
                }
                self.committed_count += 1;
                if *ct != Timestamp::ZERO {
                    match self.mode {
                        Mode::Paris => {
                            // Alg. 1 lines 29–31: hwt_c ← ct; tag WS_c with
                            // ct and move it into the cache.
                            self.hwt = *ct;
                            for (key, value) in open.write_set {
                                self.cache.insert(
                                    key,
                                    CachedWrite {
                                        version: Version::new(key, value, *ct, *tx, self.id.dc),
                                    },
                                );
                            }
                        }
                        Mode::Bpr => {
                            // BPR has no cache: the client instead raises
                            // its snapshot floor so the next transaction
                            // observes (and blocks for) its own writes.
                            self.hwt = *ct;
                            self.ust = self.ust.max(*ct);
                        }
                    }
                }
                Some(ClientEvent::Committed { tx: *tx, ct: *ct })
            }
            Msg::OpFailed { tx } => {
                let open = self.open.take()?;
                if open.tx != *tx {
                    self.open = Some(open);
                    return None;
                }
                // The transaction is gone coordinator-side; drop all local
                // state (nothing committed, cache untouched).
                Some(ClientEvent::Aborted { tx: *tx })
            }
            _ => {
                debug_assert!(false, "unexpected message at client: {}", env.msg.kind());
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_types::{DcId, PartitionId};

    fn session(mode: Mode) -> ClientSession {
        let id = ClientId::new(DcId(0), 1);
        ClientSession::new(id, ServerId::new(DcId(0), PartitionId(3)), mode)
    }

    fn tx(seq: u64) -> TxId {
        TxId::new(ServerId::new(DcId(0), PartitionId(3)), seq)
    }

    fn started(s: &mut ClientSession, seq: u64, snap: u64) -> TxId {
        let t = tx(seq);
        s.begin().unwrap();
        let ev = s.handle(&Envelope::new(
            s.coordinator(),
            s.id(),
            Msg::StartTxResp {
                tx: t,
                snapshot: Timestamp::from_physical_micros(snap),
            },
        ));
        assert!(matches!(ev, Some(ClientEvent::Started { .. })));
        t
    }

    #[test]
    fn begin_rejects_double_start() {
        let mut s = session(Mode::Paris);
        s.begin().unwrap();
        assert_eq!(s.begin().unwrap_err(), Error::TransactionAlreadyOpen);
    }

    #[test]
    fn read_and_write_require_open_tx() {
        let mut s = session(Mode::Paris);
        assert_eq!(s.read(&[Key(1)]).unwrap_err(), Error::NoOpenTransaction);
        assert_eq!(
            s.write(&[(Key(1), Value::from("x"))]).unwrap_err(),
            Error::NoOpenTransaction
        );
        assert!(s.commit().is_err());
    }

    #[test]
    fn read_own_buffered_write_from_write_set() {
        let mut s = session(Mode::Paris);
        started(&mut s, 1, 100);
        s.write(&[(Key(5), Value::from("mine"))]).unwrap();
        match s.read(&[Key(5)]).unwrap() {
            ReadStep::Done(reads) => {
                assert_eq!(reads.len(), 1);
                assert_eq!(reads[0].source, ReadSource::WriteSet);
                assert_eq!(reads[0].value.as_ref().unwrap().as_bytes(), b"mine");
            }
            ReadStep::Send(_) => panic!("should not hit the server"),
        }
    }

    #[test]
    fn last_write_wins_within_write_set() {
        let mut s = session(Mode::Paris);
        started(&mut s, 1, 100);
        s.write(&[(Key(5), Value::from("a"))]).unwrap();
        s.write(&[(Key(5), Value::from("b"))]).unwrap();
        match s.read(&[Key(5)]).unwrap() {
            ReadStep::Done(reads) => {
                assert_eq!(reads[0].value.as_ref().unwrap().as_bytes(), b"b")
            }
            _ => panic!(),
        }
    }

    #[test]
    fn missing_keys_produce_read_request() {
        let mut s = session(Mode::Paris);
        let t = started(&mut s, 1, 100);
        match s.read(&[Key(1), Key(2)]).unwrap() {
            ReadStep::Send(env) => match env.msg {
                Msg::ReadReq { tx, keys } => {
                    assert_eq!(tx, t);
                    assert_eq!(keys.len(), 2);
                }
                _ => panic!("wrong message"),
            },
            ReadStep::Done(_) => panic!("keys are not local"),
        }
    }

    #[test]
    fn repeatable_reads_from_read_set() {
        let mut s = session(Mode::Paris);
        let t = started(&mut s, 1, 100);
        assert!(matches!(s.read(&[Key(1)]).unwrap(), ReadStep::Send(_)));
        let ver = Version::new(
            Key(1),
            Value::from("v1"),
            Timestamp::from_physical_micros(50),
            tx(99),
            DcId(1),
        );
        let ev = s.handle(&Envelope::new(
            s.coordinator(),
            s.id(),
            Msg::ReadResp {
                tx: t,
                results: vec![ReadResult {
                    key: Key(1),
                    version: Some(ver),
                }],
            },
        ));
        assert!(matches!(ev, Some(ClientEvent::ReadDone { .. })));
        // Second read of the same key is local and identical.
        match s.read(&[Key(1)]).unwrap() {
            ReadStep::Done(reads) => {
                assert_eq!(reads[0].source, ReadSource::ReadSet);
                assert_eq!(reads[0].value.as_ref().unwrap().as_bytes(), b"v1");
            }
            _ => panic!("read set must satisfy repeat reads"),
        }
    }

    #[test]
    fn commit_moves_writes_to_cache_and_sets_hwt() {
        let mut s = session(Mode::Paris);
        let t = started(&mut s, 1, 100);
        s.write(&[(Key(7), Value::from("w"))]).unwrap();
        let env = s.commit().unwrap();
        assert!(matches!(env.msg, Msg::CommitReq { .. }));
        let ct = Timestamp::from_physical_micros(500);
        let ev = s.handle(&Envelope::new(
            s.coordinator(),
            s.id(),
            Msg::CommitResp { tx: t, ct },
        ));
        assert_eq!(ev, Some(ClientEvent::Committed { tx: t, ct }));
        assert_eq!(s.hwt(), ct);
        assert_eq!(s.cache_len(), 1);
        assert!(s.open_tx().is_none());
    }

    #[test]
    fn cache_serves_read_your_own_writes_across_transactions() {
        let mut s = session(Mode::Paris);
        let t1 = started(&mut s, 1, 100);
        s.write(&[(Key(7), Value::from("w"))]).unwrap();
        s.commit().unwrap();
        s.handle(&Envelope::new(
            s.coordinator(),
            s.id(),
            Msg::CommitResp {
                tx: t1,
                ct: Timestamp::from_physical_micros(500),
            },
        ));
        // Next tx gets a snapshot *older* than the commit: cache must hit.
        started(&mut s, 2, 200);
        match s.read(&[Key(7)]).unwrap() {
            ReadStep::Done(reads) => {
                assert_eq!(reads[0].source, ReadSource::Cache);
                assert_eq!(reads[0].value.as_ref().unwrap().as_bytes(), b"w");
            }
            _ => panic!("cache must satisfy read-your-own-writes"),
        }
    }

    #[test]
    fn cache_prunes_when_snapshot_covers_commit() {
        let mut s = session(Mode::Paris);
        let t1 = started(&mut s, 1, 100);
        s.write(&[(Key(7), Value::from("w"))]).unwrap();
        s.commit().unwrap();
        s.handle(&Envelope::new(
            s.coordinator(),
            s.id(),
            Msg::CommitResp {
                tx: t1,
                ct: Timestamp::from_physical_micros(500),
            },
        ));
        assert_eq!(s.cache_len(), 1);
        // Snapshot ≥ ct: entry pruned (Alg. 1 line 6), server now serves it.
        started(&mut s, 2, 600);
        assert_eq!(s.cache_len(), 0);
        assert!(matches!(s.read(&[Key(7)]).unwrap(), ReadStep::Send(_)));
    }

    #[test]
    fn read_only_commit_keeps_hwt_and_cache_empty() {
        let mut s = session(Mode::Paris);
        let t = started(&mut s, 1, 100);
        s.commit().unwrap();
        let ev = s.handle(&Envelope::new(
            s.coordinator(),
            s.id(),
            Msg::CommitResp {
                tx: t,
                ct: Timestamp::ZERO,
            },
        ));
        assert_eq!(
            ev,
            Some(ClientEvent::Committed {
                tx: t,
                ct: Timestamp::ZERO
            })
        );
        assert_eq!(s.hwt(), Timestamp::ZERO);
        assert_eq!(s.cache_len(), 0);
    }

    #[test]
    fn bpr_mode_has_no_cache_but_raises_snapshot_floor() {
        let mut s = session(Mode::Bpr);
        let t = started(&mut s, 1, 100);
        s.write(&[(Key(7), Value::from("w"))]).unwrap();
        s.commit().unwrap();
        let ct = Timestamp::from_physical_micros(900);
        s.handle(&Envelope::new(
            s.coordinator(),
            s.id(),
            Msg::CommitResp { tx: t, ct },
        ));
        assert_eq!(s.cache_len(), 0, "BPR keeps no write cache");
        assert!(s.ust() >= ct, "snapshot floor must cover own writes");
        // Next begin piggybacks the raised floor.
        let env = s.begin().unwrap();
        match env.msg {
            Msg::StartTxReq { client_ust } => assert!(client_ust >= ct),
            _ => panic!(),
        }
    }

    #[test]
    fn ust_is_monotonic_even_with_stale_coordinator() {
        let mut s = session(Mode::Paris);
        started(&mut s, 1, 1_000);
        // Finish tx 1 (read-only).
        s.commit().unwrap();
        s.handle(&Envelope::new(
            s.coordinator(),
            s.id(),
            Msg::CommitResp {
                tx: tx(1),
                ct: Timestamp::ZERO,
            },
        ));
        // A (buggy) coordinator replies with an older snapshot: ust_c must
        // not regress.
        started(&mut s, 2, 50);
        assert_eq!(s.ust(), Timestamp::from_physical_micros(1_000));
    }

    #[test]
    fn stale_responses_are_ignored() {
        let mut s = session(Mode::Paris);
        let t = started(&mut s, 1, 100);
        // A ReadResp with no read in flight.
        assert!(s
            .handle(&Envelope::new(
                s.coordinator(),
                s.id(),
                Msg::ReadResp {
                    tx: t,
                    results: vec![]
                },
            ))
            .is_none());
        // A CommitResp for a different transaction.
        assert!(s
            .handle(&Envelope::new(
                s.coordinator(),
                s.id(),
                Msg::CommitResp {
                    tx: tx(42),
                    ct: Timestamp::ZERO
                },
            ))
            .is_none());
        assert_eq!(s.open_tx(), Some(t));
    }

    #[test]
    fn reset_recovers_a_wedged_start_and_discards_the_stale_response() {
        let mut s = session(Mode::Paris);
        s.begin().unwrap();
        // The reply has not arrived; the session is stuck starting.
        assert!(s.has_operation_in_flight());
        assert_eq!(s.begin().unwrap_err(), Error::TransactionAlreadyOpen);
        s.reset();
        assert!(!s.has_operation_in_flight());

        // New begin; then the channel (FIFO) delivers the abandoned
        // begin's response first — it must be discarded, not adopted.
        s.begin().unwrap();
        let stale = s.handle(&Envelope::new(
            s.coordinator(),
            s.id(),
            Msg::StartTxResp {
                tx: tx(1),
                snapshot: Timestamp::from_physical_micros(40),
            },
        ));
        assert!(stale.is_none(), "stale StartTxResp was adopted");
        assert!(s.open_tx().is_none());

        // The genuine response for the new begin is accepted.
        let fresh = tx(2);
        let ev = s.handle(&Envelope::new(
            s.coordinator(),
            s.id(),
            Msg::StartTxResp {
                tx: fresh,
                snapshot: Timestamp::from_physical_micros(100),
            },
        ));
        assert!(matches!(ev, Some(ClientEvent::Started { tx, .. }) if tx == fresh));
        assert_eq!(s.open_tx(), Some(fresh));
    }

    #[test]
    fn reset_of_an_idle_or_open_session_discards_nothing() {
        let mut s = session(Mode::Paris);
        // Idle reset: the next begin/response pair works untouched.
        s.reset();
        started(&mut s, 1, 100);
        // Open-transaction reset (no operation in flight): same.
        s.reset();
        started(&mut s, 2, 200);
    }

    #[test]
    fn reset_recovers_a_wedged_commit_and_ignores_the_late_reply() {
        let mut s = session(Mode::Paris);
        let old = started(&mut s, 1, 100);
        s.write(&[(Key(7), Value::from("w"))]).unwrap();
        s.commit().unwrap();
        assert!(s.has_operation_in_flight());
        s.reset();
        let fresh = started(&mut s, 2, 200);
        // The old commit's reply straggles in: it must not complete the
        // new transaction or pollute the cache.
        let ev = s.handle(&Envelope::new(
            s.coordinator(),
            s.id(),
            Msg::CommitResp {
                tx: old,
                ct: Timestamp::from_physical_micros(500),
            },
        ));
        assert!(ev.is_none(), "late reply for an abandoned tx leaked");
        assert_eq!(s.open_tx(), Some(fresh));
        assert_eq!(s.cache_len(), 0, "abandoned writes must not be cached");
    }

    #[test]
    fn reset_preserves_durable_session_state() {
        let mut s = session(Mode::Paris);
        let t1 = started(&mut s, 1, 100);
        s.write(&[(Key(3), Value::from("v"))]).unwrap();
        s.commit().unwrap();
        s.handle(&Envelope::new(
            s.coordinator(),
            s.id(),
            Msg::CommitResp {
                tx: t1,
                ct: Timestamp::from_physical_micros(500),
            },
        ));
        let (ust, hwt, cached) = (s.ust(), s.hwt(), s.cache_len());
        s.begin().unwrap();
        s.reset();
        assert_eq!((s.ust(), s.hwt(), s.cache_len()), (ust, hwt, cached));
    }

    #[test]
    fn counts_track_lifecycle() {
        let mut s = session(Mode::Paris);
        let t = started(&mut s, 1, 100);
        s.commit().unwrap();
        s.handle(&Envelope::new(
            s.coordinator(),
            s.id(),
            Msg::CommitResp {
                tx: t,
                ct: Timestamp::ZERO,
            },
        ));
        assert_eq!(s.counts(), (1, 1));
    }
}
