//! The PaRiS protocol core: server and client state machines, topology,
//! consistency checking and the metadata taxonomy.
//!
//! PaRiS (Spirovska, Didona, Zwaenepoel — ICDCS 2019) is the first system
//! to combine **Transactional Causal Consistency** with **partial
//! replication** and **non-blocking parallel reads**. Its key mechanism is
//! the *Universal Stable Time* (UST): a single scalar timestamp, gossiped
//! in the background, identifying a snapshot installed by every DC — from
//! which any server in any DC can serve transactional reads without
//! blocking. A small client-side write cache layers read-your-own-writes
//! on top of the (slightly stale) stable snapshot.
//!
//! This crate contains everything protocol-level and nothing I/O-level:
//!
//! * [`Topology`] — placement (`N` partitions × `M` DCs, replication
//!   factor `R`), key routing, preferred-replica selection, the
//!   stabilization tree;
//! * [`Server`] — the partition server state machine: coordinator
//!   (Alg. 2), cohort (Alg. 3), replication + UST stabilization (Alg. 4);
//!   runs in [`Mode::Paris`] or as the blocking [`Mode::Bpr`] baseline;
//! * [`ReadView`] — the published snapshot-read handle: Algorithm 3 slice
//!   reads served concurrently off the server loop (the paper's parallel
//!   non-blocking reads), GC-safe via the shared stable frontier;
//! * [`ClientSession`] — the client state machine (Alg. 1) with the
//!   private write cache;
//! * [`HistoryChecker`] — validates executions against the paper's
//!   correctness propositions;
//! * [`metadata`] — the Table I cost taxonomy.
//!
//! Drive the state machines with the substrates in `paris-net` via
//! `paris-runtime`, or by hand:
//!
//! ```
//! use paris_core::{ClientSession, Server, ServerOptions, Topology};
//! use paris_clock::SimClock;
//! use paris_types::{ClientId, ClusterConfig, DcId, Mode, PartitionId, ServerId};
//! use std::sync::Arc;
//!
//! let topo = Arc::new(Topology::new(
//!     ClusterConfig::builder().dcs(3).partitions(3).replication_factor(2).build()?,
//! ));
//! let clock = SimClock::new();
//! let mut server = Server::new(ServerOptions {
//!     id: ServerId::new(DcId(0), PartitionId(0)),
//!     topology: Arc::clone(&topo),
//!     clock: Box::new(clock.clone()),
//!     mode: Mode::Paris,
//!     record_events: false,
//! });
//!
//! let client = ClientId::new(DcId(0), 0);
//! let mut session = ClientSession::new(client, server.id(), Mode::Paris);
//! let start = session.begin().unwrap();
//! let replies = server.handle(&start, 0);
//! assert_eq!(replies.len(), 1); // StartTxResp
//! # Ok::<(), paris_types::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
mod client;
pub mod metadata;
mod read_view;
mod server;
mod topology;

pub use checker::{HistoryChecker, RecordedRead, RecordedTx, Violation};
pub use client::{ClientEvent, ClientRead, ClientSession, ReadSource, ReadStep};
pub use read_view::{ReadView, ReadViewStats};
pub use server::{
    CommitPipeline, EventLog, LaneGuard, PipelineStats, RootState, Server, ServerOptions,
    ServerStats, ServerTuning, StagedPrepare,
};
pub use topology::Topology;

pub use paris_storage::{DurableConfig, DurableStats, FsyncPolicy, RecoveryInfo, StaleSnapshot};
pub use paris_types::Mode;
