//! The published snapshot-read view: Algorithm 3 slice reads served off
//! the server loop.
//!
//! A [`ReadView`] is a cheap cloneable handle onto a server's shared
//! state — the sharded storage [`Engine`] and the atomic
//! [`StableFrontier`] — that executes the read half of Algorithm 3
//! (`ust ← max(ust, snapshot)`, then the freshest version `≤ snapshot`
//! per key) **without entering the single-writer state machine**. Any
//! number of threads may serve reads through views of the same server
//! concurrently; this is the paper's *parallel non-blocking read*
//! property made concrete:
//!
//! * reads never take the server lock, so they cannot queue behind
//!   commits, replication batches or gossip ticks;
//! * the snapshot is universally stable (`snapshot ≤ UST` at the
//!   coordinator that assigned it), so every version the read needs is
//!   already installed — no waiting, by construction;
//! * safety against the one mutation reads can race — garbage
//!   collection — comes from the frontier: each view read registers its
//!   snapshot (GC honors the oldest in-flight read), and a read below
//!   the published `S_old` is rejected with [`StaleSnapshot`] so the
//!   authoritative single-writer loop serves it instead.
//!
//! The deterministic backends (mini, sim) call the same `serve_slice`
//! synchronously from the cohort handler, so one code path is exercised
//! by every substrate and the cross-backend agreement tests keep their
//! teeth.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use paris_proto::{Envelope, Msg, ReadResult};
use paris_storage::{Engine, StableFrontier, StaleSnapshot};
use paris_types::{ClientId, Key, Mode, ServerId, Timestamp, TxId, Version};

use crate::server::{ReportTable, RootsTable, TxTable};

/// Read-path counters, shared between a server and all its views.
#[derive(Debug, Default)]
pub struct ReadViewStats {
    /// Slice reads served through views (off- or on-loop).
    pub(crate) slice_reads: AtomicU64,
    /// Keys returned by view-served slice reads.
    pub(crate) keys_read: AtomicU64,
    /// Reads rejected because their snapshot fell below `S_old`.
    pub(crate) stale_rejections: AtomicU64,
    /// Transactions started through views (pooled snapshot assignment).
    pub(crate) start_txs: AtomicU64,
    /// Stabilization child reports folded through views (off-loop
    /// `GstReport` handling).
    pub(crate) gst_reports: AtomicU64,
    /// Whole coalesced `GossipDigest`s folded through views (off-loop
    /// digest handling).
    pub(crate) gossip_digests: AtomicU64,
    /// Logical frames carried inside those digests (the server folds
    /// this into its `coalesced_frames` counter).
    pub(crate) digest_frames: AtomicU64,
}

impl ReadViewStats {
    /// Slice reads served through views so far.
    pub fn slice_reads(&self) -> u64 {
        self.slice_reads.load(Ordering::Relaxed)
    }

    /// Keys served through views so far.
    pub fn keys_read(&self) -> u64 {
        self.keys_read.load(Ordering::Relaxed)
    }

    /// Stale-snapshot rejections so far.
    pub fn stale_rejections(&self) -> u64 {
        self.stale_rejections.load(Ordering::Relaxed)
    }

    /// Transactions started through views (pooled snapshot assignment) so
    /// far.
    pub fn start_txs(&self) -> u64 {
        self.start_txs.load(Ordering::Relaxed)
    }

    /// Stabilization child reports folded through views so far.
    pub fn gst_reports(&self) -> u64 {
        self.gst_reports.load(Ordering::Relaxed)
    }

    /// Whole gossip digests folded through views so far.
    pub fn gossip_digests(&self) -> u64 {
        self.gossip_digests.load(Ordering::Relaxed)
    }

    /// Logical frames carried inside view-folded digests so far.
    pub fn digest_frames(&self) -> u64 {
        self.digest_frames.load(Ordering::Relaxed)
    }
}

/// A concurrently-usable handle serving Algorithm 3 snapshot reads from a
/// server's published state. Obtain one with
/// [`Server::read_view`](crate::Server::read_view); clone it freely — all
/// clones share the same store, frontier and counters.
#[derive(Debug, Clone)]
pub struct ReadView {
    id: ServerId,
    mode: Mode,
    store: Arc<dyn Engine>,
    frontier: Arc<StableFrontier>,
    stats: Arc<ReadViewStats>,
    tx_table: Arc<TxTable>,
    child_reports: Arc<ReportTable>,
    dc_roots: Arc<RootsTable>,
}

impl ReadView {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: ServerId,
        mode: Mode,
        store: Arc<dyn Engine>,
        frontier: Arc<StableFrontier>,
        stats: Arc<ReadViewStats>,
        tx_table: Arc<TxTable>,
        child_reports: Arc<ReportTable>,
        dc_roots: Arc<RootsTable>,
    ) -> Self {
        ReadView {
            id,
            mode,
            store,
            frontier,
            stats,
            tx_table,
            child_reports,
            dc_roots,
        }
    }

    /// The server this view reads from.
    pub fn server(&self) -> ServerId {
        self.id
    }

    /// The server's published universal stable time.
    pub fn ust(&self) -> Timestamp {
        self.frontier.ust()
    }

    /// The server's published GC horizon.
    pub fn s_old(&self) -> Timestamp {
        self.frontier.s_old()
    }

    /// The shared read-path counters.
    pub fn stats(&self) -> &ReadViewStats {
        &self.stats
    }

    /// Serves one `ReadSliceReq` (Alg. 3 lines 1–8): bumps the published
    /// UST to the snapshot (PaRiS only — BPR snapshots are fresh, not
    /// stable, and must never drag the UST forward), reads the freshest
    /// version `≤ snapshot` of every key, and returns the
    /// `ReadSliceResp` envelope ready to send.
    ///
    /// # Errors
    ///
    /// Returns [`StaleSnapshot`] when the snapshot is below the published
    /// `S_old`: the caller must punt the request to the server loop,
    /// which serializes with GC and stays authoritative.
    pub fn serve_slice(
        &self,
        tx: TxId,
        snapshot: Timestamp,
        keys: &[Key],
        reply_to: ServerId,
    ) -> Result<Envelope, StaleSnapshot> {
        let _guard = self.frontier.begin_read(snapshot).inspect_err(|_| {
            self.stats.stale_rejections.fetch_add(1, Ordering::Relaxed);
        })?;
        if self.mode == Mode::Paris {
            // Alg. 3 line 2: ust ← max(ust, snapshot).
            self.frontier.max_ust(snapshot);
        }
        self.stats.slice_reads.fetch_add(1, Ordering::Relaxed);
        self.stats
            .keys_read
            .fetch_add(keys.len() as u64, Ordering::Relaxed);
        let results: Vec<ReadResult> = keys
            .iter()
            .map(|&key| ReadResult {
                key,
                version: self.store.read_at(key, snapshot),
            })
            .collect();
        Ok(Envelope::new(
            self.id,
            reply_to,
            Msg::ReadSliceResp {
                tx,
                partition: self.id.partition,
                results,
            },
        ))
    }

    /// Serves one `StartTxReq` (Alg. 2 lines 1–5) off the server loop:
    /// assigns the PaRiS snapshot (`ust ← max(ust, ust_c)`), registers the
    /// coordinator context in the shared transaction table — atomically
    /// with the snapshot read, so the `S_old` aggregate can never miss it
    /// — and returns the `StartTxResp` envelope ready to send. Snapshot
    /// assignment is read-only with respect to storage, which is why the
    /// read pool may carry it.
    ///
    /// Returns `None` under BPR: fresh snapshots come from the loop's HLC,
    /// so the caller must punt the request to the server state machine
    /// (pools are rejected for BPR at build time; this is the defensive
    /// backstop).
    pub fn serve_start_tx(
        &self,
        client: ClientId,
        client_ust: Timestamp,
        now: u64,
    ) -> Option<Envelope> {
        if self.mode != Mode::Paris {
            return None;
        }
        let (tx, snapshot) =
            self.tx_table
                .begin_paris(self.id, client, &self.frontier, client_ust, now);
        self.stats.start_txs.fetch_add(1, Ordering::Relaxed);
        Some(Envelope::new(
            self.id,
            client,
            Msg::StartTxResp { tx, snapshot },
        ))
    }

    /// Folds one `GstReport` (a tree child's stabilization aggregate)
    /// into the shared report table, off the server loop. Folding is
    /// read-only with respect to storage and touches only the dedicated
    /// table, so the threaded runtime's read pool can absorb report
    /// frames that would otherwise queue behind commits and replication
    /// batches on the server mailbox. Out-of-order deliveries (racing
    /// pool lanes, or a pool frame racing a loop frame) are handled by
    /// the table's monotone fold — see `server::report_table`.
    ///
    /// Unbatched reports travel through here; with coalescing enabled,
    /// gossip arrives folded inside `GossipDigest` frames, which
    /// [`ReadView::serve_gossip_digest`] absorbs whole.
    pub fn serve_gst_report(
        &self,
        partition: paris_types::PartitionId,
        mins: &[(paris_types::DcId, Timestamp)],
        oldest_active: Timestamp,
    ) {
        self.child_reports.fold(partition, mins, oldest_active);
        self.stats.gst_reports.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one coalesced `GossipDigest` entirely off the server loop:
    /// child reports into the shared report table, root GSTs into the
    /// shared roots table, and the UST/`S_old` broadcast into the atomic
    /// frontier. Every component is a monotone maximum, so pool delivery
    /// is indistinguishable from in-order loop delivery — the digest
    /// never has to queue behind commits and replication batches.
    ///
    /// Runtimes that record protocol events must keep digests on the
    /// loop instead: the off-loop path cannot stamp `ust_advances` into
    /// the server's [`EventLog`](crate::EventLog).
    pub fn serve_gossip_digest(
        &self,
        reports: &[paris_proto::DigestReport],
        roots: &[(paris_types::DcId, Timestamp, Timestamp)],
        ust: Option<(Timestamp, Timestamp)>,
        frames: u32,
    ) {
        for r in reports {
            self.child_reports
                .fold(r.partition, &r.mins, r.oldest_active);
        }
        for (dc, gst, oldest_active) in roots {
            self.dc_roots.fold_remote(*dc, *gst, *oldest_active);
        }
        if let Some((ust, s_old)) = ust {
            self.frontier.advance_ust(ust);
            self.frontier.advance_s_old(s_old);
        }
        self.stats.gossip_digests.fetch_add(1, Ordering::Relaxed);
        self.stats
            .digest_frames
            .fetch_add(u64::from(frames), Ordering::Relaxed);
    }

    /// Reads one key at `snapshot` through the view (stress tests and
    /// direct embedding; the protocol path is [`ReadView::serve_slice`]).
    ///
    /// # Errors
    ///
    /// Returns [`StaleSnapshot`] when the snapshot is below `S_old`.
    pub fn read_at(&self, key: Key, snapshot: Timestamp) -> Result<Option<Version>, StaleSnapshot> {
        let _guard = self.frontier.begin_read(snapshot)?;
        Ok(self.store.read_at(key, snapshot))
    }

    /// Registers an in-flight read at `snapshot` without serving yet: the
    /// returned guard pins the server's GC horizon at or below `snapshot`
    /// until dropped. [`ReadView::serve_slice`] registers internally; this
    /// is for callers that span multiple reads over one snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`StaleSnapshot`] when the snapshot is already below `S_old`.
    pub fn pin(&self, snapshot: Timestamp) -> Result<paris_storage::ReadGuard, StaleSnapshot> {
        self.frontier.begin_read(snapshot)
    }
}
