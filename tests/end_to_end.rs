//! Workspace-level integration tests exercising the public facade the way
//! a downstream user would: the `paris::mini` embedded cluster, the
//! simulated runtime, and the threaded runtime, across both protocol
//! modes.

use paris::mini::MiniCluster;
use paris::types::{DcId, Key, Mode, Timestamp, Value};

#[test]
fn readme_flow_write_stabilize_read_everywhere() {
    let mut cluster = MiniCluster::new(3, 6, 2, Mode::Paris).unwrap();
    let writer = cluster.client(0);
    cluster.begin(writer).unwrap();
    cluster.write(writer, Key(4), Value::from("v")).unwrap();
    let ct = cluster.commit(writer).unwrap();
    cluster.stabilize(5);
    assert!(cluster.min_ust() >= ct);

    for dc in 0..3u16 {
        let reader = cluster.client(dc);
        cluster.begin(reader).unwrap();
        assert_eq!(
            cluster.read_one(reader, Key(4)).unwrap(),
            Some(Value::from("v")),
            "dc{dc} must read the stabilized write"
        );
        cluster.commit(reader).unwrap();
    }
}

#[test]
fn causal_chain_across_three_dcs() {
    let mut cluster = MiniCluster::new(3, 9, 2, Mode::Paris).unwrap();
    let a = cluster.client(0);
    let b = cluster.client(1);
    let c = cluster.client(2);

    // a writes x; b reads x and writes y; c must not see y without x.
    cluster.begin(a).unwrap();
    cluster.write(a, Key(0), Value::from("x")).unwrap();
    let ct_x = cluster.commit(a).unwrap();
    cluster.stabilize(5);

    cluster.begin(b).unwrap();
    assert!(cluster.read_one(b, Key(0)).unwrap().is_some());
    cluster.write(b, Key(1), Value::from("y")).unwrap();
    let ct_y = cluster.commit(b).unwrap();
    assert!(ct_y > ct_x, "dependent write must be timestamped later");
    cluster.stabilize(5);

    cluster.begin(c).unwrap();
    let y = cluster.read_one(c, Key(1)).unwrap();
    let x = cluster.read_one(c, Key(0)).unwrap();
    assert!(y.is_some());
    assert!(x.is_some(), "cause must be visible with its effect");
    cluster.commit(c).unwrap();
}

#[test]
fn write_write_conflict_converges_identically_everywhere() {
    let mut cluster = MiniCluster::new(3, 6, 2, Mode::Paris).unwrap();
    let a = cluster.client(0);
    let b = cluster.client(1);

    cluster.begin(a).unwrap();
    cluster.begin(b).unwrap();
    cluster.write(a, Key(0), Value::from("A")).unwrap();
    cluster.write(b, Key(0), Value::from("B")).unwrap();
    cluster.commit(a).unwrap();
    cluster.commit(b).unwrap();
    cluster.stabilize(8);

    // Both replicas of partition 0 must agree (LWW).
    let topo = cluster.topology().clone();
    let replicas = topo.replicas(paris::types::PartitionId(0));
    let values: Vec<Vec<u8>> = replicas
        .iter()
        .map(|dc| {
            cluster
                .server(paris::types::ServerId::new(*dc, paris::types::PartitionId(0)))
                .unwrap()
                .store()
                .latest(Key(0))
                .unwrap()
                .value
                .as_bytes()
                .to_vec()
        })
        .collect();
    assert_eq!(values[0], values[1], "replicas must converge");

    // Readers in every DC see the same winner.
    let mut seen = Vec::new();
    for dc in 0..3u16 {
        let r = cluster.client(dc);
        cluster.begin(r).unwrap();
        seen.push(cluster.read_one(r, Key(0)).unwrap().unwrap());
        cluster.commit(r).unwrap();
    }
    assert!(seen.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn bpr_mode_full_flow() {
    let mut cluster = MiniCluster::new(3, 6, 2, Mode::Bpr).unwrap();
    let a = cluster.client(0);
    cluster.begin(a).unwrap();
    cluster.write(a, Key(2), Value::from("fresh")).unwrap();
    let ct = cluster.commit(a).unwrap();
    assert!(ct > Timestamp::ZERO);

    // BPR reads block until installed; MiniCluster advances background
    // rounds transparently, so this returns the fresh value without any
    // UST requirement.
    let b = cluster.client(1);
    cluster.begin(b).unwrap();
    assert_eq!(
        cluster.read_one(b, Key(2)).unwrap(),
        Some(Value::from("fresh"))
    );
    cluster.commit(b).unwrap();
}

#[test]
fn snapshots_monotonic_and_staleness_bounded_in_mini_cluster() {
    let mut cluster = MiniCluster::new(3, 6, 2, Mode::Paris).unwrap();
    let a = cluster.client(0);
    let mut prev = Timestamp::ZERO;
    for i in 0..10u64 {
        let snap = cluster.begin(a).unwrap();
        assert!(snap >= prev, "snapshot regressed at tx {i}");
        prev = snap;
        cluster.write(a, Key(i % 6), Value::filled(8, i)).unwrap();
        cluster.commit(a).unwrap();
        cluster.stabilize(2);
    }
    assert!(prev > Timestamp::ZERO);
}

#[test]
fn facade_reexports_are_usable() {
    // Compile-time sanity that the facade exposes the main types.
    let cfg = paris::ClusterConfig::builder()
        .dcs(3)
        .partitions(6)
        .replication_factor(2)
        .build()
        .unwrap();
    let topo = paris::Topology::new(cfg);
    assert_eq!(topo.dcs(), 3);
    assert_eq!(topo.partitions_in_dc(DcId(0)).len(), 4);
}

#[test]
fn sim_runtime_through_facade() {
    use paris::runtime::{SimCluster, SimConfig};
    let mut sim = SimCluster::new(SimConfig::small_test(3, 6, Mode::Paris, 31));
    sim.run_workload(200_000, 800_000);
    let report = sim.report();
    assert!(report.stats.committed > 0);
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
}

#[test]
fn threaded_runtime_through_facade() {
    use paris::runtime::{ThreadCluster, ThreadClusterConfig};
    let outcome = ThreadCluster::run(
        ThreadClusterConfig::small(3, 6, Mode::Paris),
        std::time::Duration::from_millis(600),
    );
    assert!(outcome.report.stats.committed > 0);
    assert!(outcome.violations.is_empty(), "{:#?}", outcome.violations);
    assert!(outcome.convergence.is_empty(), "{:#?}", outcome.convergence);
}
