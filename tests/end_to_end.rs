//! Workspace-level integration tests exercising the public facade the way
//! a downstream user would: one `Paris::builder()` entry point, one
//! `Cluster` trait, RAII `Txn` handles — across backends and protocol
//! modes.

use paris::types::{DcId, Key, PartitionId, ServerId, Timestamp, Value};
use paris::{Backend, Cluster, MiniCluster, Mode, Paris};

fn mini(dcs: u16, partitions: u32, mode: Mode) -> MiniCluster {
    Paris::builder()
        .dcs(dcs)
        .partitions(partitions)
        .replication(2)
        .mode(mode)
        .build_mini()
        .expect("valid deployment")
}

#[test]
fn readme_flow_write_stabilize_read_everywhere() {
    let mut cluster = mini(3, 6, Mode::Paris);
    let writer = cluster.open_client(0).unwrap();
    let mut txn = cluster.begin(writer).unwrap();
    txn.write(Key(4), Value::from("v"));
    let ct = txn.commit().unwrap();
    cluster.stabilize(5);
    assert!(cluster.min_ust() >= ct);

    for dc in 0..3u16 {
        let reader = cluster.open_client(dc).unwrap();
        let mut txn = cluster.begin(reader).unwrap();
        assert_eq!(
            txn.read_one(Key(4)).unwrap(),
            Some(Value::from("v")),
            "dc{dc} must read the stabilized write"
        );
        txn.commit().unwrap();
    }
}

#[test]
fn causal_chain_across_three_dcs() {
    let mut cluster = mini(3, 9, Mode::Paris);
    let a = cluster.open_client(0).unwrap();
    let b = cluster.open_client(1).unwrap();
    let c = cluster.open_client(2).unwrap();

    // a writes x; b reads x and writes y; c must not see y without x.
    let mut txn = cluster.begin(a).unwrap();
    txn.write(Key(0), Value::from("x"));
    let ct_x = txn.commit().unwrap();
    cluster.stabilize(5);

    let mut txn = cluster.begin(b).unwrap();
    assert!(txn.read_one(Key(0)).unwrap().is_some());
    txn.write(Key(1), Value::from("y"));
    let ct_y = txn.commit().unwrap();
    assert!(ct_y > ct_x, "dependent write must be timestamped later");
    cluster.stabilize(5);

    let mut txn = cluster.begin(c).unwrap();
    let y = txn.read_one(Key(1)).unwrap();
    let x = txn.read_one(Key(0)).unwrap();
    assert!(y.is_some());
    assert!(x.is_some(), "cause must be visible with its effect");
    txn.commit().unwrap();
}

#[test]
fn write_write_conflict_converges_identically_everywhere() {
    let mut cluster = mini(3, 6, Mode::Paris);
    let a = cluster.open_client(0).unwrap();
    let b = cluster.open_client(1).unwrap();

    // Two *concurrently open* transactions writing the same key: the raw
    // session ops express the interleaving the RAII handle's borrow
    // would forbid.
    cluster.txn_begin(a).unwrap();
    cluster.txn_begin(b).unwrap();
    cluster.txn_write(a, &[(Key(0), Value::from("A"))]).unwrap();
    cluster.txn_write(b, &[(Key(0), Value::from("B"))]).unwrap();
    cluster.txn_commit(a).unwrap();
    cluster.txn_commit(b).unwrap();
    cluster.stabilize(8);

    // Both replicas of partition 0 must agree (LWW).
    let replicas = cluster.topology().replicas(PartitionId(0));
    let values: Vec<Vec<u8>> = replicas
        .iter()
        .map(|dc| {
            cluster
                .server(ServerId::new(*dc, PartitionId(0)))
                .unwrap()
                .store()
                .latest(Key(0))
                .unwrap()
                .value
                .as_bytes()
                .to_vec()
        })
        .collect();
    assert_eq!(values[0], values[1], "replicas must converge");
    assert!(cluster.check_convergence().unwrap().is_empty());

    // Readers in every DC see the same winner.
    let mut seen = Vec::new();
    for dc in 0..3u16 {
        let r = cluster.open_client(dc).unwrap();
        let mut txn = cluster.begin(r).unwrap();
        seen.push(txn.read_one(Key(0)).unwrap().unwrap());
        txn.commit().unwrap();
    }
    assert!(seen.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn bpr_mode_full_flow() {
    let mut cluster = mini(3, 6, Mode::Bpr);
    let a = cluster.open_client(0).unwrap();
    let mut txn = cluster.begin(a).unwrap();
    txn.write(Key(2), Value::from("fresh"));
    let ct = txn.commit().unwrap();
    assert!(ct > Timestamp::ZERO);

    // BPR reads block until installed; the mini backend advances
    // background rounds transparently, so this returns the fresh value
    // without any UST requirement.
    let b = cluster.open_client(1).unwrap();
    let mut txn = cluster.begin(b).unwrap();
    assert_eq!(txn.read_one(Key(2)).unwrap(), Some(Value::from("fresh")));
    txn.commit().unwrap();
}

#[test]
fn snapshots_monotonic_in_mini_cluster() {
    let mut cluster = mini(3, 6, Mode::Paris);
    let a = cluster.open_client(0).unwrap();
    let mut prev = Timestamp::ZERO;
    for i in 0..10u64 {
        let mut txn = cluster.begin(a).unwrap();
        let snap = txn.snapshot();
        assert!(snap >= prev, "snapshot regressed at tx {i}");
        prev = snap;
        txn.write(Key(i % 6), Value::filled(8, i));
        txn.commit().unwrap();
        cluster.stabilize(2);
    }
    assert!(prev > Timestamp::ZERO);
}

#[test]
fn facade_reexports_are_usable() {
    // Compile-time sanity that the facade exposes the main types.
    let cfg = paris::ClusterConfig::builder()
        .dcs(3)
        .partitions(6)
        .replication_factor(2)
        .build()
        .unwrap();
    let topo = paris::Topology::new(cfg);
    assert_eq!(topo.dcs(), 3);
    assert_eq!(topo.partitions_in_dc(DcId(0)).len(), 4);
}

#[test]
fn sim_runtime_through_facade() {
    let mut sim = Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .keys_per_partition(200)
        .uniform_latency_micros(10_000)
        .jitter(0.02)
        .clients_per_dc(4)
        .seed(31)
        .record_events(true)
        .record_history(true)
        .backend(Backend::Sim)
        .build()
        .unwrap();
    let report = sim.run_workload(200_000, 800_000).unwrap();
    assert!(report.stats.committed > 0);
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
}

#[test]
fn threaded_runtime_through_facade() {
    let mut cluster = Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .keys_per_partition(100)
        .clients_per_dc(2)
        .seed(7)
        .record_history(true)
        .intervals(paris::types::Intervals {
            replication_micros: 2_000,
            gst_micros: 2_000,
            ust_micros: 2_000,
            gc_micros: 500_000,
        })
        .backend(Backend::Thread)
        .build()
        .unwrap();
    let report = cluster.run_workload(0, 600_000).unwrap();
    assert!(report.stats.committed > 0);
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
    let convergence = cluster.check_convergence().unwrap();
    assert!(convergence.is_empty(), "{:#?}", convergence);
}
