//! Facade-specific behaviour: RAII transaction handles (abort-on-drop),
//! session sequencing, builder validation, and cross-backend agreement on
//! the same causal scenario.

use paris::types::{Key, Value};
use paris::{Backend, Cluster, Error, Mode, Paris, Tuning};

fn mini() -> paris::MiniCluster {
    Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .build_mini()
        .expect("valid deployment")
}

#[test]
fn txn_abort_on_drop_discards_buffered_writes() {
    let mut cluster = mini();
    let a = cluster.open_client(0).unwrap();

    {
        let mut txn = cluster.begin(a).unwrap();
        txn.write(Key(1), Value::from("doomed"));
        // Dropped without commit: aborted.
    }
    cluster.stabilize(5);

    // The same session can immediately run the next transaction, and the
    // write never became visible anywhere.
    for dc in 0..3u16 {
        let r = cluster.open_client(dc).unwrap();
        let mut txn = cluster.begin(r).unwrap();
        assert_eq!(txn.read_one(Key(1)).unwrap(), None, "aborted write leaked");
        txn.commit().unwrap();
    }
}

#[test]
fn txn_explicit_abort_behaves_like_drop() {
    let mut cluster = mini();
    let a = cluster.open_client(0).unwrap();
    let mut txn = cluster.begin(a).unwrap();
    txn.write(Key(2), Value::from("doomed"));
    txn.abort().unwrap();

    let mut txn = cluster.begin(a).unwrap();
    assert_eq!(txn.read_one(Key(2)).unwrap(), None);
    txn.commit().unwrap();
}

#[test]
fn txn_reads_its_own_buffered_writes() {
    let mut cluster = mini();
    let a = cluster.open_client(0).unwrap();
    let mut txn = cluster.begin(a).unwrap();
    txn.write(Key(3), Value::from("first"));
    txn.write(Key(3), Value::from("second"));
    // Last write wins, served from the handle's buffer.
    assert_eq!(txn.read_one(Key(3)).unwrap(), Some(Value::from("second")));
    txn.commit().unwrap();
}

#[test]
fn double_begin_is_rejected_per_session() {
    let mut cluster = mini();
    let a = cluster.open_client(0).unwrap();
    // Raw-level: a session with an open transaction rejects a second
    // begin (sessions are sequential, §II-C).
    cluster.txn_begin(a).unwrap();
    assert_eq!(
        cluster.txn_begin(a).unwrap_err(),
        Error::TransactionAlreadyOpen
    );
    // Closing the transaction frees the session again.
    cluster.txn_commit(a).unwrap();
    cluster.txn_begin(a).unwrap();
    cluster.txn_commit(a).unwrap();
}

#[test]
fn operations_on_unknown_clients_fail() {
    let mut cluster = mini();
    let a = cluster.open_client(0).unwrap();
    drop(cluster);
    let mut other = mini();
    // A client id from another deployment is unknown here.
    let bogus = paris::types::ClientId::new(paris::types::DcId(0), a.seq + 999);
    assert!(other.txn_begin(bogus).is_err());
}

#[test]
fn builder_validation_errors() {
    // Replication factor above DC count.
    let err = Paris::builder().dcs(2).partitions(4).replication(3).build();
    assert!(matches!(err.err().expect("must fail"), Error::Config(_)));

    // Zero partitions.
    let err = Paris::builder().dcs(3).partitions(0).replication(2).build();
    assert!(matches!(err.err().expect("must fail"), Error::Config(_)));

    // Out-of-range jitter.
    let err = Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .jitter(1.5)
        .build();
    assert!(matches!(err.err().expect("must fail"), Error::Config(_)));

    // A shape that leaves DCs without servers.
    let err = Paris::builder()
        .dcs(10)
        .partitions(2)
        .replication(2)
        .build();
    assert!(matches!(err.err().expect("must fail"), Error::Config(_)));

    // A store with zero chain shards cannot exist.
    let err = Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .tuning(Tuning::default().store_shards(0))
        .build();
    assert!(matches!(err.err().expect("must fail"), Error::Config(_)));

    // Zero read-admission *slots* is legal: it selects the mutex-only
    // fallback registry (what fig_reads measures the slots against).
    assert!(Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .tuning(Tuning::default().read_slots(0))
        .build()
        .is_ok());

    // Sim-only knobs are rejected, not silently ignored, on other
    // backends.
    let err = Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .record_events(true)
        .backend(Backend::Thread)
        .build();
    assert!(matches!(
        err.err().expect("must fail"),
        Error::Unsupported(_)
    ));
    let err = Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .stab_branching(2)
        .backend(Backend::Mini)
        .build();
    assert!(matches!(
        err.err().expect("must fail"),
        Error::Unsupported(_)
    ));

    // Batching with fixed flush interval 0 means "default: two
    // replication ticks", resolved at build time regardless of call
    // order.
    assert!(Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .batch_size(8)
        .flush_interval_micros(0)
        .build()
        .is_ok());
    // An *unset* flush policy derives from the final intervals, capped
    // below the GC period — so interval choices (here 600 ms ticks,
    // where six ticks would overrun the 1 s GC period) can never
    // invalidate a deadline the user did not pick.
    assert!(Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .batch_size(8)
        .intervals(paris::types::Intervals {
            replication_micros: 600_000,
            gst_micros: 5_000,
            ust_micros: 5_000,
            gc_micros: 1_000_000,
        })
        .build()
        .is_ok());
    // An *explicit* fixed deadline resolving above the GC period is
    // still a clear error, never a silent adjustment.
    let err = Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .batch_size(8)
        .flush_interval_micros(0) // = 2 × 600 ms, above the gc period
        .intervals(paris::types::Intervals {
            replication_micros: 600_000,
            gst_micros: 5_000,
            ust_micros: 5_000,
            gc_micros: 1_000_000,
        })
        .build();
    assert!(matches!(err.err().expect("must fail"), Error::Config(_)));

    // Flush interval at/above the GC period.
    let err = Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .batch_size(8)
        .flush_interval_micros(1_000_000)
        .build();
    assert!(matches!(err.err().expect("must fail"), Error::Config(_)));

    // Adaptive bounds: a zero floor is rejected (unbounded queue churn),
    // as are inverted bounds and ceilings at/above the GC period.
    let err = Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .adaptive_flush(0, 10_000)
        .build();
    assert!(matches!(err.err().expect("must fail"), Error::Config(_)));
    let err = Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .adaptive_flush(10_000, 1_000)
        .build();
    assert!(matches!(err.err().expect("must fail"), Error::Config(_)));
    let err = Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .adaptive_flush(1_000, 1_000_000)
        .build();
    assert!(matches!(err.err().expect("must fail"), Error::Config(_)));
    // Valid bounds pass; with batching disabled the bounds are moot.
    assert!(Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .adaptive_flush(1_000, 10_000)
        .build()
        .is_ok());
    assert!(Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .no_batching()
        .adaptive_flush(0, 0)
        .build()
        .is_ok());

    // Out-of-range client DC on a valid deployment.
    let mut cluster = Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .build()
        .unwrap();
    assert!(matches!(
        cluster.open_client(7).unwrap_err(),
        Error::Config(_)
    ));
}

#[test]
fn boxed_cluster_supports_txn_handles() {
    // `build()` returns Box<dyn Cluster>; begin() works on the trait
    // object too.
    let mut cluster = Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .backend(Backend::Mini)
        .build()
        .unwrap();
    let a = cluster.open_client(0).unwrap();
    let mut txn = cluster.begin(a).unwrap();
    txn.write(Key(9), Value::from("boxed"));
    txn.commit().unwrap();
    cluster.stabilize(5);
    let b = cluster.open_client(1).unwrap();
    let mut txn = cluster.begin(b).unwrap();
    assert_eq!(txn.read_one(Key(9)).unwrap(), Some(Value::from("boxed")));
    txn.commit().unwrap();
}

/// Runs the same causal-chain scenario on any backend and returns what
/// the third observer saw: (y, x).
fn causal_chain(cluster: &mut dyn Cluster) -> (Option<Value>, Option<Value>) {
    let a = cluster.open_client(0).unwrap();
    let b = cluster.open_client(1).unwrap();
    let c = cluster.open_client(2).unwrap();

    let mut txn = cluster.begin(a).unwrap();
    txn.write(Key(0), Value::from("x"));
    let ct_x = txn.commit().unwrap();
    cluster.stabilize(5);

    let mut txn = cluster.begin(b).unwrap();
    let x = txn.read_one(Key(0)).unwrap();
    assert!(x.is_some(), "writer's commit must be stable after gossip");
    txn.write(Key(1), Value::from("y"));
    let ct_y = txn.commit().unwrap();
    assert!(ct_y > ct_x, "dependent write must be timestamped later");
    cluster.stabilize(5);

    let mut txn = cluster.begin(c).unwrap();
    let y = txn.read_one(Key(1)).unwrap();
    let x = txn.read_one(Key(0)).unwrap();
    txn.commit().unwrap();
    if y.is_some() {
        assert!(x.is_some(), "effect visible without its cause");
    }
    (y, x)
}

#[test]
fn sim_and_thread_backends_agree_on_causal_chain() {
    let scenario_builder = |backend| {
        Paris::builder()
            .dcs(3)
            .partitions(6)
            .replication(2)
            .keys_per_partition(100)
            .clients_per_dc(0) // interactive only
            .uniform_latency_micros(5_000)
            .jitter(0.0)
            .seed(17)
            .backend(backend)
    };

    let mut sim = scenario_builder(Backend::Sim).build().unwrap();
    let mut thread = scenario_builder(Backend::Thread).build().unwrap();

    let from_sim = causal_chain(sim.as_mut());
    let from_thread = causal_chain(thread.as_mut());

    assert_eq!(
        from_sim, from_thread,
        "sim and thread backends must observe the same causal chain"
    );
    assert_eq!(from_sim.0, Some(Value::from("y")));
    assert_eq!(from_sim.1, Some(Value::from("x")));

    // Both backends converge to identical replica contents.
    assert!(sim.check_convergence().unwrap().is_empty());
    assert!(thread.check_convergence().unwrap().is_empty());
}

#[test]
fn sim_and_thread_backends_agree_on_causal_chain_with_read_pool() {
    // Same scenario, but with `read_threads > 1`: the thread backend
    // serves slice reads on its read pool (off the server loop), the sim
    // executes the identical ReadView path synchronously — observers on
    // both must still see the same causal chain.
    let scenario_builder = |backend| {
        Paris::builder()
            .dcs(3)
            .partitions(6)
            .replication(2)
            .keys_per_partition(100)
            .clients_per_dc(0)
            .uniform_latency_micros(5_000)
            .jitter(0.0)
            .seed(29)
            .tuning(Tuning::default().read_threads(2))
            .backend(backend)
    };

    let mut sim = scenario_builder(Backend::Sim).build().unwrap();
    let mut thread = scenario_builder(Backend::Thread).build().unwrap();

    let from_sim = causal_chain(sim.as_mut());
    let from_thread = causal_chain(thread.as_mut());

    assert_eq!(
        from_sim, from_thread,
        "sim and thread must observe the same causal chain with read_threads > 1"
    );
    assert_eq!(from_sim, (Some(Value::from("y")), Some(Value::from("x"))));
    assert!(sim.check_convergence().unwrap().is_empty());
    assert!(thread.check_convergence().unwrap().is_empty());
}

#[test]
fn sim_and_thread_backends_agree_on_causal_chain_with_write_pool() {
    // Same scenario, but with `write_threads > 1`: the thread backend
    // runs prepares and replication applies on its write pool (staging
    // and lane applies off the server loop), the sim executes the
    // identical CommitPipeline path through deterministic write lanes —
    // observers on both must still see the same causal chain.
    let scenario_builder = |backend| {
        Paris::builder()
            .dcs(3)
            .partitions(6)
            .replication(2)
            .keys_per_partition(100)
            .clients_per_dc(0)
            .uniform_latency_micros(5_000)
            .jitter(0.0)
            .seed(31)
            .tuning(Tuning::default().write_threads(2))
            .backend(backend)
    };

    let mut sim = scenario_builder(Backend::Sim).build().unwrap();
    let mut thread = scenario_builder(Backend::Thread).build().unwrap();

    let from_sim = causal_chain(sim.as_mut());
    let from_thread = causal_chain(thread.as_mut());

    assert_eq!(
        from_sim, from_thread,
        "sim and thread must observe the same causal chain with write_threads > 1"
    );
    assert_eq!(from_sim, (Some(Value::from("y")), Some(Value::from("x"))));
    assert!(sim.check_convergence().unwrap().is_empty());
    assert!(thread.check_convergence().unwrap().is_empty());

    // The pipeline carried the write path on both backends, and the
    // unified stats surface says so through the same API.
    for (cluster, name) in [(&mut sim, "sim"), (&mut thread, "thread")] {
        let stats = cluster.stats().unwrap();
        assert!(stats.staged_prepares > 0, "{name}: no prepares staged");
        assert_eq!(
            stats.staged_prepares, stats.prepares,
            "{name}: every prepare goes through the pipeline"
        );
        assert!(stats.lane_batches > 0, "{name}: no lane applies");
    }
}

#[test]
fn cluster_stats_unifies_all_backends() {
    // One snapshot type for every backend: after the same workload,
    // `Cluster::stats()` must report a live write pipeline and counters
    // consistent with the run — and a second snapshot must be monotone
    // (counters are cumulative since build).
    for backend in [Backend::Mini, Backend::Sim, Backend::Thread] {
        let mut cluster = Paris::builder()
            .dcs(3)
            .partitions(6)
            .replication(2)
            .keys_per_partition(100)
            .clients_per_dc(2)
            .uniform_latency_micros(5_000)
            .seed(13)
            .backend(backend)
            .build()
            .unwrap();
        let report = cluster.run_workload(100_000, 400_000).unwrap();
        assert!(report.stats.committed > 0, "{backend:?}: no progress");

        let first = cluster.stats().unwrap();
        assert_eq!(first.servers, 12, "{backend:?}: 6 partitions × R=2");
        assert!(first.txs_coordinated > 0, "{backend:?}: no transactions");
        assert_eq!(
            first.staged_prepares, first.prepares,
            "{backend:?}: every prepare must be staged through the pipeline"
        );
        assert!(
            first.lane_batches > 0 && first.lane_applies > 0,
            "{backend:?}: replication must flow through the apply lanes"
        );
        assert!(
            first.applied_remote > 0,
            "{backend:?}: peers never applied remote batches"
        );
        assert!(
            first.summary().contains("servers"),
            "{backend:?}: summary must be human-readable"
        );

        // Cumulative counters: a later snapshot never goes backwards.
        let a = cluster.open_client(0).unwrap();
        let mut txn = cluster.begin(a).unwrap();
        txn.write(Key(17), Value::from("more"));
        txn.commit().unwrap();
        let second = cluster.stats().unwrap();
        assert!(
            second.msgs_handled > first.msgs_handled
                && second.prepares >= first.prepares
                && second.staged_prepares >= first.staged_prepares,
            "{backend:?}: stats regressed between snapshots"
        );
    }
}

#[test]
fn builder_rejects_read_pool_with_bpr() {
    let err = match Paris::builder()
        .mode(Mode::Bpr)
        .tuning(Tuning::default().read_threads(4))
        .backend(Backend::Thread)
        .build()
    {
        Ok(_) => panic!("BPR + read_threads must be rejected"),
        Err(err) => err,
    };
    assert!(err.to_string().contains("read_threads"), "{err}");
}

/// The three batching configurations every combination test sweeps:
/// explicitly off, fixed-deadline, and the adaptive default.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Batching {
    Off,
    Fixed,
    AdaptiveDefault,
}

#[test]
fn backends_agree_on_causal_chain_under_every_batching_policy() {
    // The coalescing layer may delay and merge background frames but must
    // never change what any observer can read: the same causal chain has
    // to come out of every (backend, batching policy) combination —
    // including the new default (adaptive, on).
    let scenario_builder = |backend, batching: Batching| {
        let b = Paris::builder()
            .dcs(3)
            .partitions(6)
            .replication(2)
            .keys_per_partition(100)
            .clients_per_dc(0)
            .uniform_latency_micros(5_000)
            .jitter(0.0)
            .seed(23)
            .backend(backend);
        match batching {
            Batching::Off => b.no_batching(),
            Batching::Fixed => b.batch_size(32).flush_interval_micros(3_000),
            Batching::AdaptiveDefault => b, // on by default
        }
    };

    let mut outcomes = Vec::new();
    for backend in [Backend::Sim, Backend::Thread] {
        for batching in [Batching::Off, Batching::Fixed, Batching::AdaptiveDefault] {
            let mut cluster = scenario_builder(backend, batching).build().unwrap();
            let outcome = causal_chain(cluster.as_mut());
            assert!(
                cluster.check_convergence().unwrap().is_empty(),
                "{backend:?} {batching:?}: replicas diverged"
            );
            outcomes.push(((backend, batching), outcome));
        }
    }
    for ((backend, batching), outcome) in &outcomes {
        assert_eq!(
            *outcome,
            (Some(Value::from("y")), Some(Value::from("x"))),
            "{backend:?} {batching:?}: wrong causal observation"
        );
    }
}

#[test]
fn batching_reduces_network_messages_at_equal_load() {
    let run = |batching: Batching| {
        let b = Paris::builder()
            .dcs(3)
            .partitions(9)
            .replication(2)
            .keys_per_partition(100)
            .clients_per_dc(2)
            .uniform_latency_micros(5_000)
            .seed(7)
            .record_history(true)
            .backend(Backend::Sim);
        let b = match batching {
            Batching::Off => b.no_batching(),
            Batching::Fixed => b.batch_size(64).flush_interval_micros(15_000),
            Batching::AdaptiveDefault => b, // on by default
        };
        let mut cluster = b.build().unwrap();
        cluster.run_workload(100_000, 400_000).unwrap()
    };
    let off = run(Batching::Off);
    let fixed = run(Batching::Fixed);
    let adaptive = run(Batching::AdaptiveDefault);
    for (report, name) in [(&off, "off"), (&fixed, "fixed"), (&adaptive, "default")] {
        assert!(report.stats.committed > 0, "{name}: no progress");
        assert!(
            report.violations.is_empty(),
            "{name}: checker violations {:?}",
            report.violations
        );
    }
    assert!(
        (fixed.net_messages as f64) < off.net_messages as f64 * 0.75,
        "fixed batching saved too little: {} -> {} messages",
        off.net_messages,
        fixed.net_messages
    );
    // The untouched default must batch: this is what "on by default"
    // means at the wire.
    assert!(
        (adaptive.net_messages as f64) < off.net_messages as f64 * 0.75,
        "default (adaptive) batching saved too little: {} -> {} messages",
        off.net_messages,
        adaptive.net_messages
    );
}

#[test]
fn reset_client_recovers_a_wedged_session() {
    let mut cluster = mini();
    let a = cluster.open_client(0).unwrap();

    // Wedge: the session has an open transaction (as after a transport
    // failure stranded a Txn mid-operation) and rejects every new begin.
    cluster.txn_begin(a).unwrap();
    assert_eq!(
        cluster.txn_begin(a).unwrap_err(),
        Error::TransactionAlreadyOpen
    );

    // Recovery: reset returns the session to idle; the next transaction
    // runs normally and the abandoned one's writes never surface.
    cluster
        .txn_write(a, &[(Key(11), Value::from("stranded"))])
        .unwrap();
    cluster.reset_client(a).unwrap();
    let mut txn = cluster.begin(a).unwrap();
    assert_eq!(
        txn.read_one(Key(11)).unwrap(),
        None,
        "abandoned write leaked"
    );
    txn.write(Key(12), Value::from("recovered"));
    txn.commit().unwrap();
    cluster.stabilize(5);
    let b = cluster.open_client(1).unwrap();
    let mut txn = cluster.begin(b).unwrap();
    assert_eq!(
        txn.read_one(Key(12)).unwrap(),
        Some(Value::from("recovered"))
    );
    txn.commit().unwrap();

    // Unknown clients are rejected.
    let bogus = paris::types::ClientId::new(paris::types::DcId(0), 9_999_999);
    assert!(matches!(
        cluster.reset_client(bogus).unwrap_err(),
        Error::UnknownTransaction
    ));
}

#[test]
fn reset_client_works_on_every_backend() {
    for backend in [Backend::Mini, Backend::Sim, Backend::Thread] {
        let mut cluster = Paris::builder()
            .dcs(3)
            .partitions(6)
            .replication(2)
            .keys_per_partition(100)
            .clients_per_dc(0)
            .uniform_latency_micros(5_000)
            .backend(backend)
            .build()
            .unwrap();
        let a = cluster.open_client(0).unwrap();
        cluster.txn_begin(a).unwrap();
        assert!(cluster.txn_begin(a).is_err(), "{backend:?}: not wedged");
        cluster.reset_client(a).unwrap();
        let mut txn = cluster.begin(a).unwrap();
        txn.write(Key(5), Value::from("after-reset"));
        txn.commit()
            .unwrap_or_else(|e| panic!("{backend:?}: post-reset commit failed: {e}"));
    }
}

#[test]
fn workload_runs_on_every_backend() {
    for backend in [Backend::Mini, Backend::Sim, Backend::Thread] {
        let mut cluster = Paris::builder()
            .dcs(3)
            .partitions(6)
            .replication(2)
            .keys_per_partition(100)
            .clients_per_dc(2)
            .uniform_latency_micros(5_000)
            .record_history(true)
            .seed(5)
            .backend(backend)
            .build()
            .unwrap();
        let report = cluster.run_workload(100_000, 400_000).unwrap();
        assert!(report.stats.committed > 0, "{backend:?} made no progress");
        assert!(
            report.violations.is_empty(),
            "{backend:?} violated TCC: {:#?}",
            report.violations
        );
    }
}

#[test]
fn bpr_mode_works_through_the_facade_on_all_backends() {
    for backend in [Backend::Mini, Backend::Sim, Backend::Thread] {
        let mut cluster = Paris::builder()
            .dcs(3)
            .partitions(6)
            .replication(2)
            .keys_per_partition(100)
            .clients_per_dc(0)
            .uniform_latency_micros(5_000)
            .mode(Mode::Bpr)
            .backend(backend)
            .build()
            .unwrap();
        let a = cluster.open_client(0).unwrap();
        let mut txn = cluster.begin(a).unwrap();
        txn.write(Key(0), Value::from("b"));
        txn.commit().unwrap();
        cluster.stabilize(3);
        let b = cluster.open_client(1).unwrap();
        let mut txn = cluster.begin(b).unwrap();
        assert_eq!(
            txn.read_one(Key(0)).unwrap(),
            Some(Value::from("b")),
            "{backend:?}: BPR read must block until installed, then return"
        );
        txn.commit().unwrap();
    }
}

#[test]
fn durable_mini_cluster_survives_a_rebuild_from_the_same_directory() {
    let dir = std::env::temp_dir().join(format!("paris-facade-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let build = || {
        Paris::builder()
            .dcs(2)
            .partitions(2)
            .replication(2)
            .keys_per_partition(100)
            .durability(paris::Durability::new(&dir))
            .build_mini()
            .expect("valid durable deployment")
    };

    // First life: commit, stabilize, shut the whole cluster down.
    let mut cluster = build();
    let a = cluster.open_client(0).unwrap();
    let mut txn = cluster.begin(a).unwrap();
    txn.write(Key(0), Value::from("persisted"));
    txn.write(Key(1), Value::from("also persisted"));
    txn.commit().unwrap();
    cluster.stabilize(5);
    drop(cluster);

    // Second life: every server recovers from its WAL; after gossip
    // lifts the fresh UST over the recovered timestamps, the data is
    // back and the cluster keeps working.
    let mut cluster = build();
    cluster.stabilize(5);
    let b = cluster.open_client(1).unwrap();
    let mut txn = cluster.begin(b).unwrap();
    assert_eq!(
        txn.read_one(Key(0)).unwrap(),
        Some(Value::from("persisted"))
    );
    assert_eq!(
        txn.read_one(Key(1)).unwrap(),
        Some(Value::from("also persisted"))
    );
    txn.write(Key(2), Value::from("second life"));
    txn.commit().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
