//! Facade-specific behaviour: RAII transaction handles (abort-on-drop),
//! session sequencing, builder validation, and cross-backend agreement on
//! the same causal scenario.

use paris::types::{Key, Value};
use paris::{Backend, Cluster, Error, Mode, Paris};

fn mini() -> paris::MiniCluster {
    Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .build_mini()
        .expect("valid deployment")
}

#[test]
fn txn_abort_on_drop_discards_buffered_writes() {
    let mut cluster = mini();
    let a = cluster.open_client(0).unwrap();

    {
        let mut txn = cluster.begin(a).unwrap();
        txn.write(Key(1), Value::from("doomed"));
        // Dropped without commit: aborted.
    }
    cluster.stabilize(5);

    // The same session can immediately run the next transaction, and the
    // write never became visible anywhere.
    for dc in 0..3u16 {
        let r = cluster.open_client(dc).unwrap();
        let mut txn = cluster.begin(r).unwrap();
        assert_eq!(txn.read_one(Key(1)).unwrap(), None, "aborted write leaked");
        txn.commit().unwrap();
    }
}

#[test]
fn txn_explicit_abort_behaves_like_drop() {
    let mut cluster = mini();
    let a = cluster.open_client(0).unwrap();
    let mut txn = cluster.begin(a).unwrap();
    txn.write(Key(2), Value::from("doomed"));
    txn.abort().unwrap();

    let mut txn = cluster.begin(a).unwrap();
    assert_eq!(txn.read_one(Key(2)).unwrap(), None);
    txn.commit().unwrap();
}

#[test]
fn txn_reads_its_own_buffered_writes() {
    let mut cluster = mini();
    let a = cluster.open_client(0).unwrap();
    let mut txn = cluster.begin(a).unwrap();
    txn.write(Key(3), Value::from("first"));
    txn.write(Key(3), Value::from("second"));
    // Last write wins, served from the handle's buffer.
    assert_eq!(txn.read_one(Key(3)).unwrap(), Some(Value::from("second")));
    txn.commit().unwrap();
}

#[test]
fn double_begin_is_rejected_per_session() {
    let mut cluster = mini();
    let a = cluster.open_client(0).unwrap();
    // Raw-level: a session with an open transaction rejects a second
    // begin (sessions are sequential, §II-C).
    cluster.txn_begin(a).unwrap();
    assert_eq!(
        cluster.txn_begin(a).unwrap_err(),
        Error::TransactionAlreadyOpen
    );
    // Closing the transaction frees the session again.
    cluster.txn_commit(a).unwrap();
    cluster.txn_begin(a).unwrap();
    cluster.txn_commit(a).unwrap();
}

#[test]
fn operations_on_unknown_clients_fail() {
    let mut cluster = mini();
    let a = cluster.open_client(0).unwrap();
    drop(cluster);
    let mut other = mini();
    // A client id from another deployment is unknown here.
    let bogus = paris::types::ClientId::new(paris::types::DcId(0), a.seq + 999);
    assert!(other.txn_begin(bogus).is_err());
}

#[test]
fn builder_validation_errors() {
    // Replication factor above DC count.
    let err = Paris::builder().dcs(2).partitions(4).replication(3).build();
    assert!(matches!(err.err().expect("must fail"), Error::Config(_)));

    // Zero partitions.
    let err = Paris::builder().dcs(3).partitions(0).replication(2).build();
    assert!(matches!(err.err().expect("must fail"), Error::Config(_)));

    // Out-of-range jitter.
    let err = Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .jitter(1.5)
        .build();
    assert!(matches!(err.err().expect("must fail"), Error::Config(_)));

    // A shape that leaves DCs without servers.
    let err = Paris::builder()
        .dcs(10)
        .partitions(2)
        .replication(2)
        .build();
    assert!(matches!(err.err().expect("must fail"), Error::Config(_)));

    // Sim-only knobs are rejected, not silently ignored, on other
    // backends.
    let err = Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .record_events(true)
        .backend(Backend::Thread)
        .build();
    assert!(matches!(
        err.err().expect("must fail"),
        Error::Unsupported(_)
    ));
    let err = Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .stab_branching(2)
        .backend(Backend::Mini)
        .build();
    assert!(matches!(
        err.err().expect("must fail"),
        Error::Unsupported(_)
    ));

    // Out-of-range client DC on a valid deployment.
    let mut cluster = Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .build()
        .unwrap();
    assert!(matches!(
        cluster.open_client(7).unwrap_err(),
        Error::Config(_)
    ));
}

#[test]
fn boxed_cluster_supports_txn_handles() {
    // `build()` returns Box<dyn Cluster>; begin() works on the trait
    // object too.
    let mut cluster = Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .backend(Backend::Mini)
        .build()
        .unwrap();
    let a = cluster.open_client(0).unwrap();
    let mut txn = cluster.begin(a).unwrap();
    txn.write(Key(9), Value::from("boxed"));
    txn.commit().unwrap();
    cluster.stabilize(5);
    let b = cluster.open_client(1).unwrap();
    let mut txn = cluster.begin(b).unwrap();
    assert_eq!(txn.read_one(Key(9)).unwrap(), Some(Value::from("boxed")));
    txn.commit().unwrap();
}

/// Runs the same causal-chain scenario on any backend and returns what
/// the third observer saw: (y, x).
fn causal_chain(cluster: &mut dyn Cluster) -> (Option<Value>, Option<Value>) {
    let a = cluster.open_client(0).unwrap();
    let b = cluster.open_client(1).unwrap();
    let c = cluster.open_client(2).unwrap();

    let mut txn = cluster.begin(a).unwrap();
    txn.write(Key(0), Value::from("x"));
    let ct_x = txn.commit().unwrap();
    cluster.stabilize(5);

    let mut txn = cluster.begin(b).unwrap();
    let x = txn.read_one(Key(0)).unwrap();
    assert!(x.is_some(), "writer's commit must be stable after gossip");
    txn.write(Key(1), Value::from("y"));
    let ct_y = txn.commit().unwrap();
    assert!(ct_y > ct_x, "dependent write must be timestamped later");
    cluster.stabilize(5);

    let mut txn = cluster.begin(c).unwrap();
    let y = txn.read_one(Key(1)).unwrap();
    let x = txn.read_one(Key(0)).unwrap();
    txn.commit().unwrap();
    if y.is_some() {
        assert!(x.is_some(), "effect visible without its cause");
    }
    (y, x)
}

#[test]
fn sim_and_thread_backends_agree_on_causal_chain() {
    let scenario_builder = |backend| {
        Paris::builder()
            .dcs(3)
            .partitions(6)
            .replication(2)
            .keys_per_partition(100)
            .clients_per_dc(0) // interactive only
            .uniform_latency_micros(5_000)
            .jitter(0.0)
            .seed(17)
            .backend(backend)
    };

    let mut sim = scenario_builder(Backend::Sim).build().unwrap();
    let mut thread = scenario_builder(Backend::Thread).build().unwrap();

    let from_sim = causal_chain(sim.as_mut());
    let from_thread = causal_chain(thread.as_mut());

    assert_eq!(
        from_sim, from_thread,
        "sim and thread backends must observe the same causal chain"
    );
    assert_eq!(from_sim.0, Some(Value::from("y")));
    assert_eq!(from_sim.1, Some(Value::from("x")));

    // Both backends converge to identical replica contents.
    assert!(sim.check_convergence().unwrap().is_empty());
    assert!(thread.check_convergence().unwrap().is_empty());
}

#[test]
fn workload_runs_on_every_backend() {
    for backend in [Backend::Mini, Backend::Sim, Backend::Thread] {
        let mut cluster = Paris::builder()
            .dcs(3)
            .partitions(6)
            .replication(2)
            .keys_per_partition(100)
            .clients_per_dc(2)
            .uniform_latency_micros(5_000)
            .record_history(true)
            .seed(5)
            .backend(backend)
            .build()
            .unwrap();
        let report = cluster.run_workload(100_000, 400_000).unwrap();
        assert!(report.stats.committed > 0, "{backend:?} made no progress");
        assert!(
            report.violations.is_empty(),
            "{backend:?} violated TCC: {:#?}",
            report.violations
        );
    }
}

#[test]
fn bpr_mode_works_through_the_facade_on_all_backends() {
    for backend in [Backend::Mini, Backend::Sim, Backend::Thread] {
        let mut cluster = Paris::builder()
            .dcs(3)
            .partitions(6)
            .replication(2)
            .keys_per_partition(100)
            .clients_per_dc(0)
            .uniform_latency_micros(5_000)
            .mode(Mode::Bpr)
            .backend(backend)
            .build()
            .unwrap();
        let a = cluster.open_client(0).unwrap();
        let mut txn = cluster.begin(a).unwrap();
        txn.write(Key(0), Value::from("b"));
        txn.commit().unwrap();
        cluster.stabilize(3);
        let b = cluster.open_client(1).unwrap();
        let mut txn = cluster.begin(b).unwrap();
        assert_eq!(
            txn.read_one(Key(0)).unwrap(),
            Some(Value::from("b")),
            "{backend:?}: BPR read must block until installed, then return"
        );
        txn.commit().unwrap();
    }
}
