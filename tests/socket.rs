//! The socket backend end to end: real child processes over loopback
//! TCP behind the unchanged [`Cluster`] facade.
//!
//! Shapes stay small (2 DCs × 2 partitions, R = 2 → 4 child processes)
//! so the suite never floods a CI host with processes. The child binary
//! is built by any workspace `cargo build`/`cargo test` (it is a
//! `paris-runtime` bin target) and found next to the test executable.

use std::process::Command;
use std::time::{Duration, Instant};

use paris::types::{Key, Value};
use paris::{Backend, Cluster, Error, Paris};

/// The shared small-shape builder: 4 servers, interactive clients only.
fn small(backend: Backend) -> paris::ClusterBuilder {
    Paris::builder()
        .dcs(2)
        .partitions(2)
        .replication(2)
        .keys_per_partition(100)
        .clients_per_dc(0)
        .uniform_latency_micros(5_000)
        .jitter(0.0)
        .seed(101)
        .backend(backend)
}

/// Runs a causal chain across both DCs and returns what the observer
/// saw: write x in DC 0, read-then-write y in DC 1, then an observer in
/// DC 0 reads (y, x). TCC forbids y without x.
fn causal_chain(cluster: &mut dyn Cluster) -> (Option<Value>, Option<Value>) {
    let a = cluster.open_client(0).unwrap();
    let b = cluster.open_client(1).unwrap();
    let c = cluster.open_client(0).unwrap();

    let mut txn = cluster.begin(a).unwrap();
    txn.write(Key(0), Value::from("x"));
    let ct_x = txn.commit().unwrap();
    cluster.stabilize(5);

    let mut txn = cluster.begin(b).unwrap();
    let x = txn.read_one(Key(0)).unwrap();
    assert!(x.is_some(), "writer's commit must be stable after gossip");
    txn.write(Key(1), Value::from("y"));
    let ct_y = txn.commit().unwrap();
    assert!(ct_y > ct_x, "dependent write must be timestamped later");
    cluster.stabilize(5);

    let mut txn = cluster.begin(c).unwrap();
    let y = txn.read_one(Key(1)).unwrap();
    let x = txn.read_one(Key(0)).unwrap();
    txn.commit().unwrap();
    if y.is_some() {
        assert!(x.is_some(), "effect visible without its cause");
    }
    (y, x)
}

#[test]
fn thread_and_socket_backends_agree_on_causal_chain() {
    // Batching off and on: coalescing real TCP frames must not change
    // what any observer can read, and processes must agree with threads.
    for batching_on in [false, true] {
        let with_batching = |b: paris::ClusterBuilder| {
            if batching_on {
                b.batch_size(32).flush_interval_micros(3_000)
            } else {
                b.no_batching()
            }
        };
        let mut thread = with_batching(small(Backend::Thread)).build().unwrap();
        let mut socket = with_batching(small(Backend::Socket)).build().unwrap();

        let from_thread = causal_chain(thread.as_mut());
        let from_socket = causal_chain(socket.as_mut());

        assert_eq!(
            from_thread, from_socket,
            "thread and socket backends must observe the same causal chain (batching={batching_on})"
        );
        assert_eq!(
            from_socket,
            (Some(Value::from("y")), Some(Value::from("x"))),
            "wrong causal observation (batching={batching_on})"
        );
        assert!(
            socket.check_convergence().unwrap().is_empty(),
            "socket replicas diverged (batching={batching_on})"
        );
    }
}

#[test]
fn socket_backend_honors_facade_semantics() {
    let mut cluster = small(Backend::Socket).build().unwrap();

    // Abort-on-drop: a dropped Txn handle leaves nothing behind.
    let a = cluster.open_client(0).unwrap();
    {
        let mut txn = cluster.begin(a).unwrap();
        txn.write(Key(7), Value::from("doomed"));
    }
    cluster.stabilize(3);
    let b = cluster.open_client(1).unwrap();
    let mut txn = cluster.begin(b).unwrap();
    assert_eq!(txn.read_one(Key(7)).unwrap(), None, "aborted write leaked");
    txn.commit().unwrap();

    // Double begin: sessions stay sequential across the process gap.
    cluster.txn_begin(a).unwrap();
    assert_eq!(
        cluster.txn_begin(a).unwrap_err(),
        Error::TransactionAlreadyOpen
    );
    cluster.txn_commit(a).unwrap();
    cluster.txn_begin(a).unwrap();
    cluster.txn_commit(a).unwrap();
}

#[test]
fn socket_workload_passes_the_checker_and_counts_wire_traffic() {
    let mut cluster = small(Backend::Socket)
        .clients_per_dc(2)
        .record_history(true)
        .build()
        .unwrap();
    let report = cluster.run_workload(100_000, 400_000).unwrap();
    assert!(report.stats.committed > 0, "no progress over TCP");
    assert!(
        report.violations.is_empty(),
        "socket backend violated TCC: {:#?}",
        report.violations
    );
    // Unlike in-process backends, every inter-server message really
    // crossed a socket — the counters must show it.
    assert!(report.net_messages > 0, "no wire messages counted");
    assert!(report.net_bytes > 0, "no wire bytes counted");
    assert!(cluster.check_convergence().unwrap().is_empty());
}

/// `kill -0 pid` (signal 0 probes existence without sending anything).
fn process_exists(pid: u32) -> bool {
    Command::new("kill")
        .args(["-0", &pid.to_string()])
        .stderr(std::process::Stdio::null())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

#[test]
fn killed_server_surfaces_transport_error_and_leaks_no_children() {
    let mut cluster = small(Backend::Socket)
        .clients_per_dc(2)
        .build_socket()
        .unwrap();
    let pids = cluster.server_pids();
    assert_eq!(pids.len(), 4, "2 DCs × 2 partitions is 4 child processes");
    for &pid in &pids {
        assert!(process_exists(pid), "child {pid} not running");
    }

    // Murder one server 300 ms into the workload.
    let victim = pids[0];
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        let _ = Command::new("kill")
            .args(["-9", &victim.to_string()])
            .status();
    });

    let begun = Instant::now();
    let err = cluster
        .run_workload(500_000, 4_000_000)
        .expect_err("a killed server must fail the run");
    killer.join().unwrap();
    assert!(
        matches!(err, Error::Transport(_)),
        "expected a transport error, got {err:?}"
    );
    // Timely: the liveness poll must notice long before the 4.5 s run
    // (or any client op timeout) elapses.
    assert!(
        begun.elapsed() < Duration::from_secs(3),
        "death took {:?} to surface",
        begun.elapsed()
    );

    // Shutdown reaps everything — no orphaned processes.
    drop(cluster);
    for &pid in &pids {
        assert!(!process_exists(pid), "child {pid} leaked");
    }
}

#[test]
fn crash_recovery_restores_committed_data() {
    let dir = std::env::temp_dir().join(format!("paris-sock-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cluster = small(Backend::Socket)
        .durability(paris::Durability::new(&dir))
        .record_history(true)
        .build()
        .unwrap();

    // Commit to both partitions, then let replication settle: pushes to
    // peer replicas are fire-and-forget, so anything not yet replicated
    // when the server dies is legitimately gone at that replica.
    let a = cluster.open_client(0).unwrap();
    let mut txn = cluster.begin(a).unwrap();
    txn.write(Key(0), Value::from("even"));
    txn.write(Key(1), Value::from("odd"));
    txn.commit().unwrap();
    cluster.stabilize(8);

    // SIGKILL dc0-p0 (index 0 in `Topology::all_servers` order), then
    // keep committing through the outage — from DC 1, to partition-1
    // keys only, so no path needs the dead server.
    cluster.kill_server(0).unwrap();
    let b = cluster.open_client(1).unwrap();
    let mut txn = cluster.begin(b).unwrap();
    txn.write(Key(3), Value::from("during-outage"));
    txn.commit().unwrap();

    // The restarted child replays its checkpoint + WAL suffix before it
    // rejoins; `restart_server` returns only once it is routed again.
    cluster.restart_server(0).unwrap();
    cluster.stabilize(8);

    // Fresh clients (empty write caches) in both DCs must see every
    // commit. The DC-0 read of Key(0) is served by the restarted server:
    // it has the value only if recovery restored it from disk.
    for dc in 0..2 {
        let reader = cluster.open_client(dc).unwrap();
        let mut txn = cluster.begin(reader).unwrap();
        assert_eq!(
            txn.read_one(Key(0)).unwrap(),
            Some(Value::from("even")),
            "dc{dc}: pre-kill write on the killed partition lost"
        );
        assert_eq!(txn.read_one(Key(1)).unwrap(), Some(Value::from("odd")));
        assert_eq!(
            txn.read_one(Key(3)).unwrap(),
            Some(Value::from("during-outage")),
            "dc{dc}: outage-window write lost"
        );
        txn.commit().unwrap();
    }
    assert!(
        cluster.check_convergence().unwrap().is_empty(),
        "replicas diverged after crash recovery"
    );
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_and_restart_are_socket_only_and_index_checked() {
    // The trait defaults: in-process backends have no processes to kill.
    let mut mini = small(Backend::Mini).build().unwrap();
    assert!(matches!(mini.kill_server(0), Err(Error::Unsupported(_))));
    assert!(matches!(mini.restart_server(0), Err(Error::Unsupported(_))));

    // The socket backend bounds-checks the server index.
    let mut socket = small(Backend::Socket).build_socket().unwrap();
    assert!(matches!(socket.kill_server(99), Err(Error::Config(_))));
    assert!(matches!(socket.restart_server(99), Err(Error::Config(_))));

    // Restart without a prior kill is a plain (idempotent) respawn.
    socket.restart_server(1).unwrap();
    let a = socket.open_client(0).unwrap();
    let mut txn = socket.begin(a).unwrap();
    txn.write(Key(5), Value::from("post-respawn"));
    txn.commit().unwrap();
}

#[test]
fn interactive_operation_on_a_killed_server_fails_cleanly() {
    let mut cluster = small(Backend::Socket).build_socket().unwrap();
    let a = cluster.open_client(0).unwrap();
    // A healthy transaction first, so the session and links are warm.
    let mut txn = cluster.begin(a).unwrap();
    txn.write(Key(3), Value::from("pre"));
    txn.commit().unwrap();

    for pid in cluster.server_pids() {
        let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
    }
    // Every coordinator is gone: the next operation must error, not hang.
    let begun = Instant::now();
    let err = cluster.txn_begin(a).expect_err("dead cluster must fail");
    assert!(
        matches!(err, Error::Transport(_)),
        "expected a transport error, got {err:?}"
    );
    assert!(
        begun.elapsed() < Duration::from_secs(3),
        "dead server took {:?} to surface",
        begun.elapsed()
    );
}
